//! The JSON wire format for fleet topologies.
//!
//! A [`FleetSpec`] can be defined in a text file: M device groups,
//! each an embedded session document (the same schema
//! [`xrbench_workload::spec`] loads) stamped out `replicas` times.
//! Scenario references resolve against the caller's catalog extended
//! by the document's top-level `scenarios` definitions (shared by all
//! groups), then by each session's own local definitions.
//!
//! ```json
//! {
//!   "name": "arcade",
//!   "scenarios": [ /* optional shared scenario definitions */ ],
//!   "groups": [
//!     { "name": "vr", "replicas": 8,
//!       "session": { "name": "party",
//!                    "uniform": { "scenario": "VR Gaming",
//!                                 "users": 4, "stagger_s": 0.002 } } }
//!   ]
//! }
//! ```

use serde::de::Cursor;
use serde::json::JsonValue;

use xrbench_sim::{FaultProcess, ThrottleSpec};
use xrbench_workload::spec::{
    extend_catalog, parse_json, session_from_value, session_to_value, SpecError,
};
use xrbench_workload::ScenarioCatalog;

use crate::spec::FleetSpec;

/// Decodes a fleet from a parsed JSON value.
///
/// # Errors
///
/// Returns a [`SpecError`] for shape problems, zero-replica or
/// group-less fleets, or any error from the embedded session and
/// scenario documents.
pub fn fleet_from_value(
    cursor: &Cursor<'_>,
    catalog: &ScenarioCatalog,
) -> Result<FleetSpec, SpecError> {
    cursor.deny_unknown_fields(&["name", "scenarios", "groups"])?;
    let name: String = cursor.get_field("name")?;
    let catalog = extend_catalog(cursor, catalog)?;

    let groups = cursor.field("groups")?.items()?;
    if groups.is_empty() {
        return Err(SpecError::Invalid {
            path: cursor.path().to_string(),
            message: "fleet needs at least one device group".to_string(),
        });
    }
    let mut fleet = FleetSpec::new(name);
    for group in groups {
        group.deny_unknown_fields(&["name", "replicas", "session", "faults"])?;
        let group_name: String = group.get_field("name")?;
        let replicas_cursor = group.field("replicas")?;
        let replicas: u32 = replicas_cursor.get()?;
        if replicas == 0 {
            return Err(SpecError::Invalid {
                path: replicas_cursor.path().to_string(),
                message: "device group needs at least one replica".to_string(),
            });
        }
        let session = session_from_value(&group.field("session")?, &catalog)?;
        fleet = match group.opt_field("faults")? {
            Some(faults_cursor) => {
                let faults = faults_from_value(&faults_cursor)?;
                fleet.group_faulted(group_name, session, replicas, faults)
            }
            None => fleet.group(group_name, session, replicas),
        };
    }
    Ok(fleet)
}

/// Decodes a device group's optional availability process. Every rate
/// and mean defaults to zero, so a spec states only the fault modes it
/// wants; the decoded process must pass [`FaultProcess::validate`].
fn faults_from_value(cursor: &Cursor<'_>) -> Result<FaultProcess, SpecError> {
    cursor.deny_unknown_fields(&[
        "failure_rate_per_s",
        "mean_downtime_s",
        "preemption_rate_per_s",
        "mean_preemption_s",
        "throttle",
    ])?;
    let mut faults = FaultProcess::default();
    if let Some(v) = cursor.get_opt_field("failure_rate_per_s")? {
        faults.failure_rate_per_s = v;
    }
    if let Some(v) = cursor.get_opt_field("mean_downtime_s")? {
        faults.mean_downtime_s = v;
    }
    if let Some(v) = cursor.get_opt_field("preemption_rate_per_s")? {
        faults.preemption_rate_per_s = v;
    }
    if let Some(v) = cursor.get_opt_field("mean_preemption_s")? {
        faults.mean_preemption_s = v;
    }
    if let Some(throttle) = cursor.opt_field("throttle")? {
        throttle.deny_unknown_fields(&["period_s", "duty", "factor"])?;
        faults.throttle = Some(ThrottleSpec {
            period_s: throttle.get_field("period_s")?,
            duty: throttle.get_field("duty")?,
            factor: throttle.get_field("factor")?,
        });
    }
    if let Err(message) = faults.validate() {
        return Err(SpecError::Invalid {
            path: cursor.path().to_string(),
            message: format!("invalid fault process: {message}"),
        });
    }
    Ok(faults)
}

/// Loads a fleet from JSON text (see [`fleet_from_value`]).
///
/// # Errors
///
/// See [`fleet_from_value`]; malformed JSON yields [`SpecError::Json`].
pub fn fleet_from_str(text: &str, catalog: &ScenarioCatalog) -> Result<FleetSpec, SpecError> {
    let value = parse_json(text)?;
    fleet_from_value(&Cursor::root(&value), catalog)
}

/// The serializable wire value of a fleet. Each group's session is
/// exported through [`session_to_value`], so non-builtin scenarios
/// travel as local definitions and the result reloads exactly.
pub fn fleet_to_value(fleet: &FleetSpec) -> JsonValue {
    JsonValue::Object(vec![
        ("name".to_string(), JsonValue::Str(fleet.name.clone())),
        (
            "groups".to_string(),
            JsonValue::Array(
                fleet
                    .groups
                    .iter()
                    .map(|g| {
                        let mut obj = vec![
                            ("name".to_string(), JsonValue::Str(g.name.clone())),
                            (
                                "replicas".to_string(),
                                JsonValue::Num(f64::from(g.replicas)),
                            ),
                            ("session".to_string(), session_to_value(&g.session)),
                        ];
                        if let Some(f) = &g.faults {
                            obj.push(("faults".to_string(), faults_to_value(f)));
                        }
                        JsonValue::Object(obj)
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The wire value of one group's availability process (the shape
/// [`faults_from_value`] decodes).
fn faults_to_value(f: &FaultProcess) -> JsonValue {
    let mut obj = vec![
        (
            "failure_rate_per_s".to_string(),
            JsonValue::Num(f.failure_rate_per_s),
        ),
        (
            "mean_downtime_s".to_string(),
            JsonValue::Num(f.mean_downtime_s),
        ),
        (
            "preemption_rate_per_s".to_string(),
            JsonValue::Num(f.preemption_rate_per_s),
        ),
        (
            "mean_preemption_s".to_string(),
            JsonValue::Num(f.mean_preemption_s),
        ),
    ];
    if let Some(t) = &f.throttle {
        obj.push((
            "throttle".to_string(),
            JsonValue::Object(vec![
                ("period_s".to_string(), JsonValue::Num(t.period_s)),
                ("duty".to_string(), JsonValue::Num(t.duty)),
                ("factor".to_string(), JsonValue::Num(t.factor)),
            ]),
        ));
    }
    JsonValue::Object(obj)
}

/// Serializes a fleet as a pretty-printed spec file (the format
/// [`fleet_from_str`] loads).
pub fn fleet_to_json(fleet: &FleetSpec) -> String {
    serde_json::to_string_pretty(&fleet_to_value(fleet)).expect("spec serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrbench_workload::{SessionSpec, UsageScenario};

    #[test]
    fn loads_a_two_group_fleet() {
        let fleet = fleet_from_str(
            r#"{
                "name": "arcade",
                "groups": [
                    { "name": "vr", "replicas": 8,
                      "session": { "name": "party",
                                   "uniform": { "scenario": "VR Gaming",
                                                "users": 4, "stagger_s": 0.002 } } },
                    { "name": "ar", "replicas": 4,
                      "session": { "name": "walk",
                                   "uniform": { "scenario": "AR Assistant",
                                                "users": 2 } } }
                ]
            }"#,
            &ScenarioCatalog::builtin(),
        )
        .unwrap();
        assert_eq!(fleet.name, "arcade");
        assert_eq!(fleet.total_sessions(), 12);
        assert_eq!(fleet.total_users(), 8 * 4 + 4 * 2);
    }

    #[test]
    fn shared_scenarios_reach_every_group() {
        let fleet = fleet_from_str(
            r#"{
                "name": "f",
                "scenarios": [
                    { "name": "Fitness", "models": [
                        { "model": "HT", "target_fps": 30.0 } ] }
                ],
                "groups": [
                    { "name": "a", "replicas": 1,
                      "session": { "name": "s",
                                   "uniform": { "scenario": "Fitness", "users": 1 } } }
                ]
            }"#,
            &ScenarioCatalog::builtin(),
        )
        .unwrap();
        assert_eq!(fleet.groups[0].session.users[0].spec.name, "Fitness");
    }

    #[test]
    fn rejections_never_panic() {
        let catalog = ScenarioCatalog::builtin();
        for (text, needle) in [
            ("{ nope", "invalid JSON"),
            (
                r#"{ "name": "f", "groups": [] }"#,
                "at least one device group",
            ),
            (
                r#"{ "name": "f", "groups": [
                     { "name": "a", "replicas": 0,
                       "session": { "name": "s",
                                    "uniform": { "scenario": "VR Gaming", "users": 1 } } } ] }"#,
                "at least one replica",
            ),
            (
                r#"{ "name": "f", "groups": [
                     { "name": "a", "replicas": 1,
                       "session": { "name": "s",
                                    "uniform": { "scenario": "Nope", "users": 1 } } } ] }"#,
                "unknown scenario `Nope`",
            ),
            (r#"{ "name": "f", "gruops": [] }"#, "unknown field `gruops`"),
            (
                r#"{ "name": "f", "groups": [
                     { "name": "a", "replicas": 1,
                       "session": { "name": "s",
                                    "uniform": { "scenario": "VR Gaming", "users": 1 } },
                       "faults": { "failure_rate_per_s": -2.0 } } ] }"#,
                "invalid fault process",
            ),
            (
                r#"{ "name": "f", "groups": [
                     { "name": "a", "replicas": 1,
                       "session": { "name": "s",
                                    "uniform": { "scenario": "VR Gaming", "users": 1 } },
                       "faults": { "failure_rate": 1.0 } } ] }"#,
                "unknown field `failure_rate`",
            ),
            (
                r#"{ "name": "f", "groups": [
                     { "name": "a", "replicas": 1,
                       "session": { "name": "s",
                                    "uniform": { "scenario": "VR Gaming", "users": 1 } },
                       "faults": { "throttle": { "duty": 0.5, "factor": 0.5 } } } ] }"#,
                "missing required field `period_s`",
            ),
        ] {
            let err = fleet_from_str(text, &catalog).unwrap_err();
            assert!(err.to_string().contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn fleets_round_trip_byte_identically() {
        let fleet = FleetSpec::new("demo")
            .group(
                "vr",
                SessionSpec::uniform("vr", UsageScenario::VrGaming.spec(), 4, 0.002),
                8,
            )
            .group(
                "mix",
                SessionSpec::mixed(
                    "mix",
                    &[
                        UsageScenario::ArGaming.spec(),
                        UsageScenario::OutdoorActivityA.spec(),
                    ],
                    3,
                    0.01,
                ),
                2,
            );
        let json = fleet_to_json(&fleet);
        let reloaded = fleet_from_str(&json, &ScenarioCatalog::builtin()).unwrap();
        assert_eq!(reloaded, fleet);
        assert_eq!(fleet_to_json(&reloaded), json);
    }

    #[test]
    fn faulted_groups_round_trip_byte_identically() {
        use xrbench_sim::{FaultProcess, ThrottleSpec};
        let fleet = FleetSpec::new("churny").group_faulted(
            "vr",
            SessionSpec::uniform("vr", UsageScenario::VrGaming.spec(), 2, 0.002),
            4,
            FaultProcess {
                failure_rate_per_s: 0.5,
                mean_downtime_s: 0.1,
                preemption_rate_per_s: 1.0,
                mean_preemption_s: 0.02,
                throttle: Some(ThrottleSpec {
                    period_s: 0.25,
                    duty: 0.4,
                    factor: 0.5,
                }),
            },
        );
        let json = fleet_to_json(&fleet);
        assert!(json.contains("\"faults\""), "{json}");
        let reloaded = fleet_from_str(&json, &ScenarioCatalog::builtin()).unwrap();
        assert_eq!(reloaded, fleet);
        assert_eq!(fleet_to_json(&reloaded), json);
    }

    #[test]
    fn fault_fields_default_to_a_quiet_process_member() {
        // A partial fault object: unstated rates are zero.
        let fleet = fleet_from_str(
            r#"{
                "name": "f",
                "groups": [
                    { "name": "a", "replicas": 1,
                      "session": { "name": "s",
                                   "uniform": { "scenario": "VR Gaming", "users": 1 } },
                      "faults": { "preemption_rate_per_s": 2.0,
                                  "mean_preemption_s": 0.01 } }
                ]
            }"#,
            &ScenarioCatalog::builtin(),
        )
        .unwrap();
        let f = fleet.groups[0].faults.unwrap();
        assert_eq!(f.failure_rate_per_s, 0.0);
        assert_eq!(f.preemption_rate_per_s, 2.0);
        assert_eq!(f.throttle, None);
    }
}
