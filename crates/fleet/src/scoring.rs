//! Streaming per-session scoring: the harness scoring path
//! re-expressed as a fold, so a device session is scored without ever
//! retaining its per-request vectors.
//!
//! The arithmetic deliberately mirrors `xrbench-core`'s
//! `Harness::score_result` + `xrbench_score::scenario_score` **to the
//! operation**: per-model sums accumulate in record order, component
//! means divide in the same order, and the per-inference triple is the
//! same [`InferenceScore`] product. A 1-session fleet therefore
//! reproduces `Harness::run_session`'s per-user breakdowns
//! bit-for-bit (the fleet-level aggregates then quantize them to
//! fixed point for exact merging).

use xrbench_models::{quality_for, ModelId, QualityType};
use xrbench_score::{
    accuracy_score, energy_score, qoe_score, rt_score, AccuracyParams, EnergyParams,
    InferenceScore, MetricKind, RtParams, ScenarioBreakdown,
};
use xrbench_sim::{ExecRecord, SessionSimResult};
use xrbench_workload::SessionSpec;

/// Per-inference scorer with the accuracy component precomputed per
/// model (it is a pure function of the model's quality table and the
/// accuracy parameters, so computing it once per fleet instead of
/// once per inference changes nothing but the cost).
#[derive(Debug, Clone)]
pub struct InferenceScorer {
    rt: RtParams,
    energy: EnergyParams,
    accuracy_by_model: Vec<f64>,
}

impl InferenceScorer {
    /// Builds the scorer for one parameter set.
    pub fn new(rt: RtParams, energy: EnergyParams, accuracy: AccuracyParams) -> Self {
        let accuracy_by_model = ModelId::ALL
            .iter()
            .map(|&m| {
                let q = quality_for(m);
                let kind = match q.quality_type {
                    QualityType::HigherIsBetter => MetricKind::HigherIsBetter,
                    QualityType::LowerIsBetter => MetricKind::LowerIsBetter,
                };
                accuracy_score(q.measured, q.target, kind, accuracy)
            })
            .collect();
        Self {
            rt,
            energy,
            accuracy_by_model,
        }
    }

    /// Scores one executed inference (Definition 14's three factors),
    /// identically to `Harness::score_inference`.
    pub fn score(&self, rec: &ExecRecord) -> InferenceScore {
        InferenceScore::new(
            rt_score(rec.latency_s(), rec.slack_s(), self.rt),
            energy_score(rec.energy_j, self.energy),
            self.accuracy_by_model[rec.model as usize],
        )
    }
}

/// Per-(user, model) score sums for one in-flight device session.
#[derive(Debug, Clone, Copy, Default)]
struct ModelFold {
    count: u64,
    combined_sum: f64,
    rt_sum: f64,
    en_sum: f64,
    acc_sum: f64,
}

/// One user's fold slots, parallel to their scenario's model list.
#[derive(Debug, Clone)]
struct UserFold {
    user: u32,
    models: Vec<ModelFold>,
    /// `ModelId as usize` → index into `models` (the user's scenario
    /// model order).
    slot_of: Vec<Option<u32>>,
}

/// The streaming scorer for one device session: folds records as the
/// simulator dispatches them, then closes each user's scenario
/// breakdown against the session's final frame accounting.
#[derive(Debug, Clone)]
pub(crate) struct SessionFold {
    /// Per-user folds, in `SessionSpec::users` order.
    users: Vec<UserFold>,
    /// Sorted `(user id, index)` pairs for record routing.
    index: Vec<(u32, u32)>,
}

impl SessionFold {
    pub(crate) fn new(session: &SessionSpec) -> Self {
        let users: Vec<UserFold> = session
            .users
            .iter()
            .map(|u| {
                let mut slot_of = vec![None; ModelId::ALL.len()];
                for (i, sm) in u.spec.models.iter().enumerate() {
                    slot_of[sm.model as usize] = Some(i as u32);
                }
                UserFold {
                    user: u.user,
                    models: vec![ModelFold::default(); u.spec.models.len()],
                    slot_of,
                }
            })
            .collect();
        let mut index: Vec<(u32, u32)> = users
            .iter()
            .enumerate()
            .map(|(i, u)| (u.user, i as u32))
            .collect();
        index.sort_unstable();
        Self { users, index }
    }

    /// Folds one executed inference; returns its combined score for
    /// histogramming.
    pub(crate) fn record(&mut self, user: u32, rec: &ExecRecord, scorer: &InferenceScorer) -> f64 {
        let ui = self.index[self
            .index
            .binary_search_by_key(&user, |e| e.0)
            .expect("record for unknown session user")]
        .1 as usize;
        let uf = &mut self.users[ui];
        let slot = uf.slot_of[rec.model as usize].expect("record for model outside user's scenario")
            as usize;
        let s = scorer.score(rec);
        let m = &mut uf.models[slot];
        m.count += 1;
        m.combined_sum += s.combined();
        m.rt_sum += s.realtime;
        m.en_sum += s.energy;
        m.acc_sum += s.accuracy;
        s.combined()
    }

    /// Closes the session: per-user scenario breakdowns (in
    /// `SessionSpec::users` order) computed exactly as
    /// `xrbench_score::scenario_score` would from the materialized
    /// vectors.
    pub(crate) fn finish(
        &self,
        session: &SessionSpec,
        result: &SessionSimResult,
    ) -> Vec<ScenarioBreakdown> {
        session
            .users
            .iter()
            .zip(&self.users)
            .map(|(su, uf)| {
                debug_assert_eq!(su.user, uf.user);
                let stats = &result.user(su.user).expect("simulated every user").stats;
                let k = su.spec.models.len() as f64;
                // Same iteration order and operation order as
                // `scenario_score`: QoE and overall average over all
                // models; components average over executed models.
                let mut qoe_sum = 0.0;
                let mut overall_sum = 0.0;
                let mut rt_sum = 0.0;
                let mut en_sum = 0.0;
                let mut acc_sum = 0.0;
                let mut executed_models = 0u64;
                for (sm, mf) in su.spec.models.iter().zip(&uf.models) {
                    let total = stats.get(&sm.model).map_or(0, |s| s.total_frames);
                    let per_model = if mf.count == 0 {
                        0.0
                    } else {
                        mf.combined_sum / mf.count as f64
                    };
                    let qoe = qoe_score(mf.count, total);
                    qoe_sum += qoe;
                    overall_sum += per_model * qoe;
                    if mf.count > 0 {
                        executed_models += 1;
                        let n = mf.count as f64;
                        rt_sum += mf.rt_sum / n;
                        en_sum += mf.en_sum / n;
                        acc_sum += mf.acc_sum / n;
                    }
                }
                let comp = |sum: f64| {
                    if executed_models == 0 {
                        0.0
                    } else {
                        sum / executed_models as f64
                    }
                };
                ScenarioBreakdown {
                    realtime: comp(rt_sum),
                    energy: comp(en_sum),
                    accuracy: comp(acc_sum),
                    qoe: qoe_sum / k,
                    overall: overall_sum / k,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scorer_matches_componentwise_recomputation() {
        let scorer = InferenceScorer::new(
            RtParams::default(),
            EnergyParams::default(),
            AccuracyParams::default(),
        );
        let rec = ExecRecord {
            model: ModelId::HandTracking,
            frame_id: 0,
            sensor_frame: 0,
            engine: 0,
            t_req: 0.0,
            t_deadline: 0.010,
            t_start: 0.0,
            t_end: 0.005,
            energy_j: 0.1,
        };
        let s = scorer.score(&rec);
        assert_eq!(s.realtime, rt_score(0.005, 0.010, RtParams::default()));
        assert_eq!(s.energy, energy_score(0.1, EnergyParams::default()));
        let q = quality_for(ModelId::HandTracking);
        let kind = match q.quality_type {
            QualityType::HigherIsBetter => MetricKind::HigherIsBetter,
            QualityType::LowerIsBetter => MetricKind::LowerIsBetter,
        };
        assert_eq!(
            s.accuracy,
            accuracy_score(q.measured, q.target, kind, AccuracyParams::default())
        );
    }
}
