//! The streaming, exactly-mergeable fleet aggregate.
//!
//! A fleet run never materializes per-request result vectors: every
//! completed inference is folded into a [`FleetAccumulator`] on the
//! worker that simulated it, and worker/group accumulators are merged
//! at the end. For the final [`crate::FleetReport`] to be
//! **bit-identical regardless of worker count**, merging must be
//! exact — which rules out `f64` sums, whose rounding depends on the
//! merge tree. Three representations make every merge associative,
//! commutative, and lossless:
//!
//! * **integer counters** (`u64`) for frames, drops, and deadline
//!   misses;
//! * **fixed-point integer sums** (`i128`, power-of-two scales) for
//!   every summed quantity — latency, energy, scores. Converting
//!   `v → round(v·2^k)` is deterministic, multiplying by a power of
//!   two is exact in IEEE-754, and the integer sums then merge
//!   exactly. Means recovered from the sums are quantized at
//!   `2^-40` s / J and `2^-62` score units — far below reporting
//!   precision — and identical on every merge order;
//! * **fixed-bucket histograms** ([`FixedHistogram`]) whose `u64`
//!   buckets merge by element-wise addition, yielding deterministic
//!   p50/p95/p99.
//!
//! `min`/`max` are kept as raw `f64` — both operations are exact and
//! order-insensitive already.

use std::collections::BTreeMap;

use xrbench_models::ModelId;
use xrbench_score::{FixedHistogram, ScenarioBreakdown};
use xrbench_sim::{ExecRecord, ModelStats};

/// Fixed-point scale for unit scores in `[0, 1]`: 2⁶².
pub const SCORE_SCALE: f64 = (1u64 << 62) as f64;
/// Fixed-point scale for times in seconds: 2⁴⁰ (≈ 0.9 ps resolution).
pub const TIME_SCALE: f64 = (1u64 << 40) as f64;
/// Fixed-point scale for energies in joules: 2⁴⁰ (≈ 0.9 pJ resolution).
pub const ENERGY_SCALE: f64 = (1u64 << 40) as f64;

/// Deterministic fixed-point conversion.
#[inline]
fn fp(v: f64, scale: f64) -> i128 {
    (v * scale).round() as i128
}

/// Streaming count/mean/min/max of one quantity, with the sum held in
/// fixed point so merging is exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatAgg {
    /// Number of recorded values.
    pub count: u64,
    /// Non-finite values offered to [`StatAgg::record`]: counted here,
    /// excluded from the sum and min/max. A NaN or ±inf would
    /// otherwise corrupt the fixed-point sum silently (the saturating
    /// `as i128` cast turns +inf into `i128::MAX`), so anomalies are
    /// quarantined deterministically instead.
    pub anomalies: u64,
    pub(crate) sum_fp: i128,
    pub(crate) min: f64,
    pub(crate) max: f64,
}

impl Default for StatAgg {
    fn default() -> Self {
        Self {
            count: 0,
            anomalies: 0,
            sum_fp: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl StatAgg {
    /// Records one value at the given fixed-point scale. The same
    /// scale must be used for every record and for [`StatAgg::mean`].
    ///
    /// Non-finite values land in [`StatAgg::anomalies`]; −0.0 is
    /// normalized to +0.0 so min/max merging stays commutative at the
    /// bit level (IEEE `<` treats −0.0 and 0.0 as equal, which would
    /// otherwise leave the sign of a zero min dependent on which
    /// worker saw it first).
    pub fn record(&mut self, v: f64, scale: f64) {
        if !v.is_finite() {
            self.anomalies += 1;
            return;
        }
        let v = if v == 0.0 { 0.0 } else { v };
        self.count += 1;
        self.sum_fp += fp(v, scale);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Merges another aggregate (exact: integer sum, min/max).
    pub fn merge(&mut self, other: &StatAgg) {
        self.count += other.count;
        self.anomalies += other.anomalies;
        self.sum_fp += other.sum_fp;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// The mean at the given scale (0 when empty).
    pub fn mean(&self, scale: f64) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum_fp as f64 / scale) / self.count as f64
        }
    }

    /// The minimum recorded value (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// The maximum recorded value (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Frame drops split by cause, fleet-wide.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropCounts {
    /// Frames superseded by a newer frame of the same model.
    pub superseded: u64,
    /// Dependent frames whose upstream frame was itself dropped.
    pub upstream_dropped: u64,
    /// Frames still queued when their session's run ended.
    pub starved: u64,
    /// In-flight frames revoked by an engine preemption (fault
    /// injection under the `Drop` recovery policy).
    pub preempted: u64,
    /// In-flight frames revoked by an engine failure (fault injection
    /// under the `Drop` recovery policy).
    pub device_lost: u64,
}

impl DropCounts {
    /// Total drops across causes.
    pub fn total(&self) -> u64 {
        self.superseded + self.upstream_dropped + self.starved + self.preempted + self.device_lost
    }

    /// Drops attributable to injected faults (preemption + churn).
    pub fn fault_total(&self) -> u64 {
        self.preempted + self.device_lost
    }

    /// Adds another breakdown into this one.
    pub fn merge(&mut self, other: &DropCounts) {
        self.superseded += other.superseded;
        self.upstream_dropped += other.upstream_dropped;
        self.starved += other.starved;
        self.preempted += other.preempted;
        self.device_lost += other.device_lost;
    }
}

/// One model's fleet-wide aggregate: frame accounting plus
/// latency/energy count/mean/min/max.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelAccumulator {
    /// Frames streamed and triggered (`NumFrm`), across the fleet.
    pub total_frames: u64,
    /// Frames executed.
    pub executed_frames: u64,
    /// Frames deactivated by failed cascade draws.
    pub untriggered_frames: u64,
    /// Executed frames delivered past their deadline.
    pub missed_deadlines: u64,
    /// Drops by cause.
    pub drops: DropCounts,
    /// End-to-end latency (seconds, [`TIME_SCALE`]).
    pub latency: StatAgg,
    /// Per-inference energy (joules, [`ENERGY_SCALE`]).
    pub energy: StatAgg,
}

impl ModelAccumulator {
    /// Folds one executed inference.
    pub fn record_exec(&mut self, rec: &ExecRecord) {
        self.latency.record(rec.latency_s(), TIME_SCALE);
        self.energy.record(rec.energy_j, ENERGY_SCALE);
    }

    /// Folds one session's per-model frame accounting.
    pub fn absorb_stats(&mut self, st: &ModelStats) {
        self.total_frames += st.total_frames;
        self.executed_frames += st.executed_frames;
        self.untriggered_frames += st.untriggered_frames;
        self.missed_deadlines += st.missed_deadlines;
        self.drops.superseded += st.dropped_superseded;
        self.drops.upstream_dropped += st.dropped_upstream;
        self.drops.starved += st.dropped_starved;
        self.drops.preempted += st.dropped_preempted;
        self.drops.device_lost += st.dropped_device_lost;
    }

    /// Merges another model aggregate (exact).
    pub fn merge(&mut self, other: &ModelAccumulator) {
        self.total_frames += other.total_frames;
        self.executed_frames += other.executed_frames;
        self.untriggered_frames += other.untriggered_frames;
        self.missed_deadlines += other.missed_deadlines;
        self.drops.merge(&other.drops);
        self.latency.merge(&other.latency);
        self.energy.merge(&other.energy);
    }

    /// Whether anything was streamed to this model fleet-wide.
    pub fn touched(&self) -> bool {
        self.total_frames + self.untriggered_frames + self.drops.total() > 0
    }
}

/// One scenario's fleet-wide aggregate over its users.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioAccumulator {
    /// Users that ran this scenario across the fleet.
    pub users: u64,
    /// Per-user overall scenario score ([`SCORE_SCALE`]).
    pub overall: StatAgg,
    pub(crate) realtime_fp: i128,
    pub(crate) energy_fp: i128,
    pub(crate) accuracy_fp: i128,
    pub(crate) qoe_fp: i128,
}

impl ScenarioAccumulator {
    /// Folds one user's scored breakdown.
    pub fn record_user(&mut self, b: &ScenarioBreakdown) {
        self.users += 1;
        self.overall.record(b.overall, SCORE_SCALE);
        self.realtime_fp += fp(b.realtime, SCORE_SCALE);
        self.energy_fp += fp(b.energy, SCORE_SCALE);
        self.accuracy_fp += fp(b.accuracy, SCORE_SCALE);
        self.qoe_fp += fp(b.qoe, SCORE_SCALE);
    }

    /// Merges another scenario aggregate (exact).
    pub fn merge(&mut self, other: &ScenarioAccumulator) {
        self.users += other.users;
        self.overall.merge(&other.overall);
        self.realtime_fp += other.realtime_fp;
        self.energy_fp += other.energy_fp;
        self.accuracy_fp += other.accuracy_fp;
        self.qoe_fp += other.qoe_fp;
    }

    /// The mean per-user breakdown.
    pub fn mean_breakdown(&self) -> ScenarioBreakdown {
        let n = self.users.max(1) as f64;
        let mean = |s: i128| (s as f64 / SCORE_SCALE) / n;
        ScenarioBreakdown {
            realtime: mean(self.realtime_fp),
            energy: mean(self.energy_fp),
            accuracy: mean(self.accuracy_fp),
            qoe: mean(self.qoe_fp),
            overall: self.overall.mean(SCORE_SCALE),
        }
    }
}

/// The streaming fleet aggregate: everything the final
/// [`crate::FleetReport`] needs, in O(models + scenarios) memory,
/// with an exact (associative, commutative) [`FleetAccumulator::merge`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetAccumulator {
    /// Device sessions folded in.
    pub sessions: u64,
    /// Users folded in.
    pub users: u64,
    /// Per-session score (the session aggregate's overall,
    /// [`SCORE_SCALE`]).
    pub session_score: StatAgg,
    /// End-to-end latency histogram (seconds).
    pub latency: FixedHistogram,
    /// Deadline-overrun histogram (seconds; met deadlines record 0).
    pub overrun: FixedHistogram,
    /// Combined per-inference score histogram (`[0, 1]`).
    pub score: FixedHistogram,
    pub(crate) per_model: Vec<ModelAccumulator>,
    pub(crate) per_scenario: BTreeMap<String, ScenarioAccumulator>,
}

impl Default for FleetAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl FleetAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            sessions: 0,
            users: 0,
            session_score: StatAgg::default(),
            latency: FixedHistogram::new(),
            overrun: FixedHistogram::new(),
            score: FixedHistogram::new(),
            per_model: vec![ModelAccumulator::default(); ModelId::ALL.len()],
            per_scenario: BTreeMap::new(),
        }
    }

    /// One model's aggregate, mutable.
    pub fn model_mut(&mut self, m: ModelId) -> &mut ModelAccumulator {
        &mut self.per_model[m as usize]
    }

    /// One model's aggregate.
    pub fn model(&self, m: ModelId) -> &ModelAccumulator {
        &self.per_model[m as usize]
    }

    /// One scenario's aggregate, created on first touch.
    pub fn scenario_mut(&mut self, name: &str) -> &mut ScenarioAccumulator {
        self.per_scenario.entry(name.to_string()).or_default()
    }

    /// Models with any fleet-wide activity, in [`ModelId::ALL`] order.
    pub fn models(&self) -> impl Iterator<Item = (ModelId, &ModelAccumulator)> {
        ModelId::ALL
            .iter()
            .map(|&m| (m, &self.per_model[m as usize]))
            .filter(|(_, a)| a.touched())
    }

    /// Scenario aggregates, in name order.
    pub fn scenarios(&self) -> impl Iterator<Item = (&str, &ScenarioAccumulator)> {
        self.per_scenario.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another accumulator. Exact: every field is an integer
    /// counter, fixed-point sum, histogram, or min/max, so the merge
    /// is associative and commutative and any merge tree over the
    /// same session set produces bit-identical state.
    pub fn merge(&mut self, other: &FleetAccumulator) {
        self.sessions += other.sessions;
        self.users += other.users;
        self.session_score.merge(&other.session_score);
        self.latency.merge(&other.latency);
        self.overrun.merge(&other.overrun);
        self.score.merge(&other.score);
        for (a, b) in self.per_model.iter_mut().zip(&other.per_model) {
            a.merge(b);
        }
        for (name, agg) in &other.per_scenario {
            self.per_scenario
                .entry(name.clone())
                .or_default()
                .merge(agg);
        }
    }

    /// Fleet-wide streamed-and-triggered frames.
    pub fn total_frames(&self) -> u64 {
        self.per_model.iter().map(|m| m.total_frames).sum()
    }

    /// Fleet-wide executed inferences.
    pub fn executed_frames(&self) -> u64 {
        self.per_model.iter().map(|m| m.executed_frames).sum()
    }

    /// Fleet-wide untriggered (cascade-deactivated) frames.
    pub fn untriggered_frames(&self) -> u64 {
        self.per_model.iter().map(|m| m.untriggered_frames).sum()
    }

    /// Fleet-wide executed frames past their deadline.
    pub fn missed_deadlines(&self) -> u64 {
        self.per_model.iter().map(|m| m.missed_deadlines).sum()
    }

    /// Fleet-wide drops by cause.
    pub fn drops(&self) -> DropCounts {
        let mut d = DropCounts::default();
        for m in &self.per_model {
            d.merge(&m.drops);
        }
        d
    }

    /// Fleet-wide generated arrivals: streamed frames plus the frames
    /// a failed cascade draw deactivated.
    pub fn arrivals(&self) -> u64 {
        self.total_frames() + self.untriggered_frames()
    }

    /// Fleet-wide total energy (J), from the exact fixed-point sums.
    pub fn total_energy_j(&self) -> f64 {
        let sum: i128 = self.per_model.iter().map(|m| m.energy.sum_fp).sum();
        sum as f64 / ENERGY_SCALE
    }

    /// Fleet-wide latency count/mean/min/max, merged (exactly) from
    /// the per-model aggregates.
    pub fn latency_stats(&self) -> StatAgg {
        let mut s = StatAgg::default();
        for m in &self.per_model {
            s.merge(&m.latency);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg_of(vals: &[f64]) -> StatAgg {
        let mut a = StatAgg::default();
        for &v in vals {
            a.record(v, TIME_SCALE);
        }
        a
    }

    #[test]
    fn stat_agg_tracks_count_mean_min_max() {
        let a = agg_of(&[0.001, 0.003, 0.002]);
        assert_eq!(a.count, 3);
        assert!((a.mean(TIME_SCALE) - 0.002).abs() < 1e-9);
        assert_eq!(a.min(), 0.001);
        assert_eq!(a.max(), 0.003);
        let empty = StatAgg::default();
        assert_eq!(empty.mean(TIME_SCALE), 0.0);
        assert_eq!(empty.min(), 0.0);
        assert_eq!(empty.max(), 0.0);
    }

    #[test]
    fn stat_agg_merge_is_exact() {
        // Any partition of the same values merges to identical state.
        let vals: Vec<f64> = (1..100).map(|i| f64::from(i) * 1.7e-4).collect();
        let whole = agg_of(&vals);
        for split in [1, 13, 50, 98] {
            let mut left = agg_of(&vals[..split]);
            left.merge(&agg_of(&vals[split..]));
            assert_eq!(left, whole, "split at {split}");
        }
    }

    #[test]
    fn non_finite_values_are_quarantined_not_summed() {
        let mut a = StatAgg::default();
        a.record(0.002, TIME_SCALE);
        a.record(f64::NAN, TIME_SCALE);
        a.record(f64::INFINITY, TIME_SCALE);
        a.record(f64::NEG_INFINITY, TIME_SCALE);
        a.record(0.004, TIME_SCALE);
        assert_eq!(a.count, 2);
        assert_eq!(a.anomalies, 3);
        assert!((a.mean(TIME_SCALE) - 0.003).abs() < 1e-9);
        assert_eq!(a.min(), 0.002);
        assert_eq!(a.max(), 0.004);
        // Anomaly counts merge like every other counter.
        let mut b = StatAgg::default();
        b.record(f64::NAN, TIME_SCALE);
        a.merge(&b);
        assert_eq!(a.anomalies, 4);
    }

    #[test]
    fn negative_zero_merges_commutatively() {
        // Without normalization the sign of a zero min depends on
        // which worker saw it first — a worker-count byte divergence.
        let mut a = StatAgg::default();
        a.record(-0.0, TIME_SCALE);
        let mut b = StatAgg::default();
        b.record(0.0, TIME_SCALE);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert!(ab.min().is_sign_positive());
        assert!(ab.max().is_sign_positive());
    }

    #[test]
    fn fleet_merge_unions_scenarios() {
        let b = ScenarioBreakdown {
            realtime: 0.9,
            energy: 0.8,
            accuracy: 1.0,
            qoe: 0.95,
            overall: 0.684,
        };
        let mut x = FleetAccumulator::new();
        x.scenario_mut("VR Gaming").record_user(&b);
        let mut y = FleetAccumulator::new();
        y.scenario_mut("AR Gaming").record_user(&b);
        y.scenario_mut("VR Gaming").record_user(&b);
        x.merge(&y);
        let names: Vec<&str> = x.scenarios().map(|(n, _)| n).collect();
        assert_eq!(names, ["AR Gaming", "VR Gaming"]);
        let (_, vr) = x.scenarios().nth(1).unwrap();
        assert_eq!(vr.users, 2);
        let mb = vr.mean_breakdown();
        assert!((mb.overall - 0.684).abs() < 1e-12);
        assert!((mb.realtime - 0.9).abs() < 1e-12);
    }

    #[test]
    fn fixed_point_roundtrips_typical_scores() {
        // Power-of-two scaling is exact for scores down to ~2^-10.
        let mut a = StatAgg::default();
        a.record(0.887_654_321, SCORE_SCALE);
        assert_eq!(a.mean(SCORE_SCALE), 0.887_654_321);
    }

    #[test]
    fn model_accumulator_tracks_stats_and_records() {
        use xrbench_models::ModelId;
        let mut acc = FleetAccumulator::new();
        let rec = ExecRecord {
            model: ModelId::HandTracking,
            frame_id: 0,
            sensor_frame: 0,
            engine: 0,
            t_req: 0.0,
            t_deadline: 0.016,
            t_start: 0.0,
            t_end: 0.004,
            energy_j: 0.002,
        };
        acc.model_mut(ModelId::HandTracking).record_exec(&rec);
        let st = ModelStats {
            total_frames: 3,
            executed_frames: 1,
            dropped_frames: 2,
            dropped_superseded: 1,
            dropped_starved: 1,
            ..Default::default()
        };
        acc.model_mut(ModelId::HandTracking).absorb_stats(&st);
        let m = acc.model(ModelId::HandTracking);
        assert!(m.touched());
        assert_eq!(m.latency.count, 1);
        assert_eq!(m.drops.total(), 2);
        assert_eq!(acc.total_frames(), 3);
        assert_eq!(acc.executed_frames(), 1);
        assert_eq!(acc.arrivals(), 3);
        assert!((acc.total_energy_j() - 0.002).abs() < 1e-9);
        assert!(!acc.model(ModelId::ObjectDetection).touched());
    }
}
