//! Fleet topology: device groups of replicated sessions, with
//! deterministic per-replica seed derivation.
//!
//! A [`FleetSpec`] describes M **device groups**; each group is one
//! [`SessionSpec`] (the device's concurrent-tenant workload) stamped
//! out `replicas` times. Every replica is an *independent* device: it
//! gets its own seed — derived from the base run seed, the group
//! index, and the replica index — so two replicas of the same session
//! spec never share jitter or cascade draws, exactly as two physical
//! headsets running the same app would not.
//!
//! A group may also carry a [`FaultProcess`]: a deterministic
//! availability process (engine churn, preemption, thermal throttling)
//! applied to every replica in the group. Each replica expands its own
//! fault timeline from its replica seed, so faulted fleets stay
//! exactly mergeable and reproducible like fault-free ones.

use xrbench_sim::FaultProcess;
use xrbench_workload::SessionSpec;

/// One device group: a session spec replicated across independent
/// devices.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceGroup {
    /// Group display name.
    pub name: String,
    /// The per-device workload (scenarios, users, stagger).
    pub session: SessionSpec,
    /// How many independent devices run this session.
    pub replicas: u32,
    /// Optional availability process applied to every replica's
    /// engines (`None` = perfectly static hardware).
    pub faults: Option<FaultProcess>,
}

/// A fleet: M device groups, executed as `Σ replicas` independent
/// device sessions.
///
/// ```
/// use xrbench_fleet::FleetSpec;
/// use xrbench_workload::{SessionSpec, UsageScenario};
///
/// let fleet = FleetSpec::new("demo")
///     .group(
///         "vr",
///         SessionSpec::uniform("vr", UsageScenario::VrGaming.spec(), 4, 0.002),
///         8,
///     )
///     .group(
///         "ar",
///         SessionSpec::uniform("ar", UsageScenario::ArGaming.spec(), 2, 0.002),
///         4,
///     );
/// assert_eq!(fleet.total_sessions(), 12);
/// assert_eq!(fleet.total_users(), 8 * 4 + 4 * 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Fleet display name.
    pub name: String,
    /// The device groups, in declaration order.
    pub groups: Vec<DeviceGroup>,
}

/// One splitmix64 finalization round.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of one device session from the fleet's base seed:
/// two chained splitmix64 rounds over the group and replica indices.
/// A pure function of `(base_seed, group, replica)`, so a fleet run is
/// reproducible session-by-session and replicas never share streams.
pub fn replica_seed(base_seed: u64, group: u32, replica: u32) -> u64 {
    let g = mix64(
        base_seed
            ^ u64::from(group)
                .wrapping_add(1)
                .wrapping_mul(0xA24B_AED4_963E_E407),
    );
    mix64(
        g ^ u64::from(replica)
            .wrapping_add(1)
            .wrapping_mul(0x9FB2_1C65_1E98_DF25),
    )
}

impl FleetSpec {
    /// An empty fleet with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            groups: Vec::new(),
        }
    }

    /// Adds one device group running `session` on `replicas`
    /// independent devices.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0` or the session has no users.
    #[must_use]
    pub fn group(mut self, name: impl Into<String>, session: SessionSpec, replicas: u32) -> Self {
        assert!(replicas > 0, "device group needs at least one replica");
        assert!(
            !session.users.is_empty(),
            "device group session needs at least one user"
        );
        self.groups.push(DeviceGroup {
            name: name.into(),
            session,
            replicas,
            faults: None,
        });
        self
    }

    /// [`FleetSpec::group`] with an availability process: every
    /// replica's engines churn, get preempted, and throttle per
    /// `faults` (each replica expanding its own seed-derived
    /// timeline).
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`, the session has no users, or the
    /// fault process is invalid (see [`FaultProcess::validate`]).
    #[must_use]
    pub fn group_faulted(
        mut self,
        name: impl Into<String>,
        session: SessionSpec,
        replicas: u32,
        faults: FaultProcess,
    ) -> Self {
        if let Err(e) = faults.validate() {
            panic!("invalid fault process: {e}");
        }
        self = self.group(name, session, replicas);
        self.groups
            .last_mut()
            .expect("group was just pushed")
            .faults = Some(faults);
        self
    }

    /// A single-group fleet: `replicas` devices of one session.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0` or the session has no users.
    pub fn uniform(name: impl Into<String>, session: SessionSpec, replicas: u32) -> Self {
        let name = name.into();
        let group_name = format!("{name}-devices");
        Self::new(name).group(group_name, session, replicas)
    }

    /// Number of device groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Total device sessions across all groups.
    pub fn total_sessions(&self) -> u64 {
        self.groups.iter().map(|g| u64::from(g.replicas)).sum()
    }

    /// Total concurrent users across all device sessions.
    pub fn total_users(&self) -> u64 {
        self.groups
            .iter()
            .map(|g| u64::from(g.replicas) * g.session.num_users() as u64)
            .sum()
    }

    /// Validates the fleet for execution.
    ///
    /// # Panics
    ///
    /// Panics if the fleet has no groups (group-level invariants are
    /// enforced at construction by [`FleetSpec::group`]).
    pub fn validate(&self) {
        assert!(!self.groups.is_empty(), "fleet has no device groups");
        for g in &self.groups {
            assert!(g.replicas > 0, "device group needs at least one replica");
            assert!(
                !g.session.users.is_empty(),
                "device group session needs at least one user"
            );
            if let Some(f) = &g.faults {
                if let Err(e) = f.validate() {
                    panic!("device group `{}` fault process: {e}", g.name);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrbench_workload::UsageScenario;

    fn session(users: u32) -> SessionSpec {
        SessionSpec::uniform("s", UsageScenario::VrGaming.spec(), users, 0.001)
    }

    #[test]
    fn totals_sum_over_groups() {
        let f = FleetSpec::new("f")
            .group("a", session(4), 3)
            .group("b", session(2), 5);
        assert_eq!(f.num_groups(), 2);
        assert_eq!(f.total_sessions(), 8);
        assert_eq!(f.total_users(), 3 * 4 + 5 * 2);
        f.validate();
    }

    #[test]
    fn uniform_is_one_group() {
        let f = FleetSpec::uniform("u", session(2), 7);
        assert_eq!(f.num_groups(), 1);
        assert_eq!(f.total_sessions(), 7);
    }

    #[test]
    fn replica_seeds_are_distinct_and_reproducible() {
        use std::collections::BTreeSet;
        let mut seen = BTreeSet::new();
        for g in 0..16 {
            for r in 0..64 {
                let s = replica_seed(0xC0FF_EE00, g, r);
                assert_eq!(s, replica_seed(0xC0FF_EE00, g, r), "reproducible");
                assert!(seen.insert(s), "seed collision at group {g} replica {r}");
            }
        }
        // Different base seeds decorrelate the whole fleet.
        assert_ne!(replica_seed(1, 0, 0), replica_seed(2, 0, 0));
    }

    #[test]
    #[should_panic(expected = "replica")]
    fn zero_replicas_rejected() {
        let _ = FleetSpec::new("f").group("a", session(1), 0);
    }

    #[test]
    #[should_panic(expected = "no device groups")]
    fn empty_fleet_rejected() {
        FleetSpec::new("f").validate();
    }

    #[test]
    fn faulted_groups_carry_their_process() {
        let faults = FaultProcess {
            failure_rate_per_s: 0.5,
            mean_downtime_s: 0.1,
            ..FaultProcess::default()
        };
        let f = FleetSpec::new("f")
            .group("static", session(1), 2)
            .group_faulted("churny", session(1), 3, faults);
        assert_eq!(f.groups[0].faults, None);
        assert_eq!(f.groups[1].faults, Some(faults));
        f.validate();
    }

    #[test]
    #[should_panic(expected = "invalid fault process")]
    fn invalid_fault_process_rejected_at_construction() {
        let bad = FaultProcess {
            failure_rate_per_s: -1.0,
            ..FaultProcess::default()
        };
        let _ = FleetSpec::new("f").group_faulted("g", session(1), 1, bad);
    }
}
