//! The shard supervisor: bounded fork/exec of shard children with
//! retry-once failure handling.
//!
//! The coordinator side of a distributed fleet run spawns one child
//! process per shard (`xrbench run-fleet … --shard k/N`), reads each
//! child's [`crate::ShardState`] JSON from its stdout pipe, and merges
//! the states through [`crate::merge_fleet_shards`]. This module owns
//! the process plumbing and its failure semantics; it is deliberately
//! binary-agnostic — the caller supplies a closure that builds the
//! [`std::process::Command`] for shard `k`, so tests can substitute
//! `/bin/sh` scripts and the CLI can re-exec its own binary.
//!
//! ## Semantics
//!
//! * **Bounded concurrency.** At most `max_concurrent` children run
//!   at once; further shards wait for a slot. Children are spawned in
//!   shard order and reaped in shard order (the pipeline is a FIFO),
//!   which bounds coordinator memory at `max_concurrent` buffered
//!   pipes without any polling.
//! * **Retry-once.** A child that exits nonzero (or fails to spawn)
//!   is retried exactly once, synchronously, in its slot. A second
//!   failure aborts the whole run with a [`ShardError`] carrying the
//!   child's captured stderr — shard results are partial sums, so a
//!   missing shard makes the merged report silently wrong; failing
//!   loudly is the only correct option.
//! * **Determinism.** Results are returned indexed by shard, so the
//!   caller's merge order never depends on child completion order.
//!   (The merge is commutative anyway — this just keeps the pipeline
//!   boring.)

use std::process::{Command, Stdio};

/// A shard child failed twice (or its output pipe broke).
#[derive(Debug)]
pub struct ShardError {
    /// Which shard failed.
    pub shard: u32,
    /// What went wrong (spawn error, exit status, or pipe error).
    pub message: String,
    /// The child's captured stderr from the failing attempt (empty if
    /// it never spawned).
    pub stderr: String,
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} failed after retry: {}",
            self.shard, self.message
        )?;
        if !self.stderr.is_empty() {
            write!(f, "\n--- child stderr ---\n{}", self.stderr.trim_end())?;
        }
        Ok(())
    }
}

impl std::error::Error for ShardError {}

/// One finished child attempt.
struct Attempt {
    ok: bool,
    message: String,
    stdout: String,
    stderr: String,
}

/// Spawns shard `k`'s command and waits for it, capturing both pipes.
fn run_attempt(command: &mut Command) -> Attempt {
    let spawned = command
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn();
    let child = match spawned {
        Ok(c) => c,
        Err(e) => {
            return Attempt {
                ok: false,
                message: format!("failed to spawn: {e}"),
                stdout: String::new(),
                stderr: String::new(),
            }
        }
    };
    match child.wait_with_output() {
        Ok(out) => Attempt {
            ok: out.status.success(),
            message: if out.status.success() {
                String::new()
            } else {
                format!("exited with {}", out.status)
            },
            stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
            stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
        },
        Err(e) => Attempt {
            ok: false,
            message: format!("failed to collect output: {e}"),
            stdout: String::new(),
            stderr: String::new(),
        },
    }
}

/// Runs `num_shards` shard children with at most `max_concurrent`
/// alive at once and returns each child's stdout, indexed by shard.
///
/// `command_for(k)` builds the command for shard `k`; it is called
/// once per attempt (so a retry gets a fresh `Command`). Children
/// inherit nothing on stdin and have both output pipes captured. A
/// child that exits nonzero is retried once; see the module docs for
/// the full semantics.
///
/// # Errors
///
/// Returns the first [`ShardError`] in shard order once every child
/// spawned before the failure has been reaped (no zombies are left
/// behind on the error path).
///
/// # Panics
///
/// Panics if `num_shards == 0` or `max_concurrent == 0`.
pub fn supervise(
    num_shards: u32,
    max_concurrent: usize,
    command_for: &mut dyn FnMut(u32) -> Command,
) -> Result<Vec<String>, ShardError> {
    assert!(num_shards > 0, "supervisor needs at least one shard");
    assert!(max_concurrent > 0, "supervisor needs at least one slot");
    // Spawning is wrapped in run_attempt's wait, so "concurrent"
    // means: keep a window of in-flight children and reap the oldest
    // before spawning past the window. wait_with_output() reads the
    // pipes to EOF, so a child ahead of the reap point can never
    // block on a full pipe longer than the window allows.
    let mut in_flight: std::collections::VecDeque<(u32, std::process::Child)> =
        std::collections::VecDeque::new();
    let mut results: Vec<Option<String>> = (0..num_shards).map(|_| None).collect();

    let reap = |shard: u32,
                child: std::process::Child,
                command_for: &mut dyn FnMut(u32) -> Command|
     -> Result<String, ShardError> {
        let first = match child.wait_with_output() {
            Ok(out) if out.status.success() => {
                return Ok(String::from_utf8_lossy(&out.stdout).into_owned())
            }
            Ok(out) => Attempt {
                ok: false,
                message: format!("exited with {}", out.status),
                stdout: String::new(),
                stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
            },
            Err(e) => Attempt {
                ok: false,
                message: format!("failed to collect output: {e}"),
                stdout: String::new(),
                stderr: String::new(),
            },
        };
        // Retry once, synchronously in this slot.
        let second = run_attempt(&mut command_for(shard));
        if second.ok {
            return Ok(second.stdout);
        }
        Err(ShardError {
            shard,
            message: format!("{} (first attempt: {})", second.message, first.message),
            stderr: if second.stderr.is_empty() {
                first.stderr
            } else {
                second.stderr
            },
        })
    };

    let mut error: Option<ShardError> = None;
    for shard in 0..num_shards {
        if error.is_some() {
            break;
        }
        if in_flight.len() >= max_concurrent {
            let (done_shard, done_child) = in_flight.pop_front().expect("window non-empty");
            match reap(done_shard, done_child, command_for) {
                Ok(stdout) => results[done_shard as usize] = Some(stdout),
                Err(e) => error = Some(e),
            }
            if error.is_some() {
                break;
            }
        }
        match command_for(shard)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
        {
            Ok(child) => in_flight.push_back((shard, child)),
            Err(e) => {
                // Spawn failure: retry once immediately.
                let second = run_attempt(&mut command_for(shard));
                if second.ok {
                    results[shard as usize] = Some(second.stdout);
                } else {
                    error = Some(ShardError {
                        shard,
                        message: format!(
                            "{} (first attempt: failed to spawn: {e})",
                            second.message
                        ),
                        stderr: second.stderr,
                    });
                }
            }
        }
    }
    // Drain the window — on the error path too, so no zombies linger.
    while let Some((shard, child)) = in_flight.pop_front() {
        match reap(shard, child, command_for) {
            Ok(stdout) => results[shard as usize] = Some(stdout),
            Err(e) => {
                error.get_or_insert(e);
            }
        }
    }
    if let Some(e) = error {
        return Err(e);
    }
    Ok(results
        .into_iter()
        .map(|r| r.expect("every shard reaped"))
        .collect())
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    fn sh(script: String) -> Command {
        let mut c = Command::new("/bin/sh");
        c.arg("-c").arg(script);
        c
    }

    #[test]
    fn collects_stdout_in_shard_order() {
        let out = supervise(4, 2, &mut |k| sh(format!("printf 'shard-%s' {k}")))
            .expect("all children succeed");
        assert_eq!(out, ["shard-0", "shard-1", "shard-2", "shard-3"]);
    }

    #[test]
    fn concurrency_window_of_one_still_completes() {
        let out = supervise(3, 1, &mut |k| sh(format!("echo {k}"))).unwrap();
        assert_eq!(out, ["0\n", "1\n", "2\n"]);
    }

    #[test]
    fn failing_child_is_retried_once() {
        // First attempt fails (marker file absent → create it and exit
        // 1); the retry sees the marker and succeeds. The marker lives
        // under the test's target tmpdir.
        let dir = std::env::temp_dir().join(format!("xrbench-retry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let marker = dir.join("attempted");
        let _ = std::fs::remove_file(&marker);
        let script = format!(
            "if [ -f {m} ]; then echo recovered; else touch {m}; echo boom >&2; exit 1; fi",
            m = marker.display()
        );
        let out = supervise(1, 1, &mut |_| sh(script.clone())).expect("retry succeeds");
        assert_eq!(out, ["recovered\n"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn double_failure_surfaces_child_stderr() {
        let err = supervise(2, 2, &mut |k| {
            if k == 1 {
                sh("echo 'shard exploded' >&2; exit 3".to_string())
            } else {
                sh("echo fine".to_string())
            }
        })
        .expect_err("shard 1 fails twice");
        assert_eq!(err.shard, 1);
        assert!(err.message.contains("exit"), "{}", err.message);
        assert!(err.stderr.contains("shard exploded"), "{}", err.stderr);
        let display = err.to_string();
        assert!(display.contains("shard 1 failed after retry"), "{display}");
        assert!(display.contains("shard exploded"), "{display}");
    }

    #[test]
    fn unspawnable_command_errors_after_retry() {
        let err = supervise(1, 1, &mut |_| {
            Command::new("/nonexistent/xrbench-no-such-bin")
        })
        .expect_err("spawn fails twice");
        assert_eq!(err.shard, 0);
        assert!(err.message.contains("spawn"), "{}", err.message);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_concurrency_rejected() {
        let _ = supervise(1, 0, &mut |_| sh("true".to_string()));
    }
}
