//! The builtin spec catalog `export-specs` writes.
//!
//! The committed `specs/` directory at the repository root is exactly
//! this module's output: the seven Table 2 scenarios (serialized
//! through `xrbench_workload::scenario_to_json`) plus the three
//! default run documents below. CI re-exports into a scratch
//! directory on every push and diffs against the committed files, so
//! `specs/` can never drift from the code; re-bless with
//! `XRBENCH_BLESS=1 cargo test -p xrbench-cli`.

/// The canonical file name of a scenario spec (lowercased, spaces to
/// underscores — the same convention the golden suite fixtures use).
pub fn scenario_file_name(scenario: &str) -> String {
    format!("{}.json", scenario.to_ascii_lowercase().replace(' ', "_"))
}

/// The default suite run: the quickstart configuration (accelerator J
/// at 8192 PEs, 10 repeats, paper-default seed and duration), whose
/// XRBench Score is 0.888.
pub const SUITE_DEFAULT: &str = r#"{
  "kind": "suite",
  "hardware": { "accelerator": { "id": "J", "pes": 8192 } },
  "repeats": 10
}
"#;

/// The default session run: a four-user VR Gaming party joining 50 ms
/// apart on accelerator J at 8192 PEs, under the paper-default
/// latency-greedy scheduler.
pub const SESSION_DEFAULT: &str = r#"{
  "kind": "session",
  "hardware": { "accelerator": { "id": "J", "pes": 8192 } },
  "session": {
    "name": "vr-party",
    "uniform": { "scenario": "VR Gaming", "users": 4, "stagger_s": 0.05 }
  }
}
"#;

/// The default fleet run: two device groups (VR parties and AR
/// assistant walkers) on accelerator J at 8192 PEs. AR Assistant has
/// probabilistic cascades, so this document also pins the seeded
/// dynamic path.
pub const FLEET_DEFAULT: &str = r#"{
  "kind": "fleet",
  "hardware": { "accelerator": { "id": "J", "pes": 8192 } },
  "fleet": {
    "name": "demo-arcade",
    "groups": [
      {
        "name": "vr",
        "replicas": 4,
        "session": {
          "name": "party",
          "uniform": { "scenario": "VR Gaming", "users": 4, "stagger_s": 0.002 }
        }
      },
      {
        "name": "assistant",
        "replicas": 2,
        "session": {
          "name": "walk",
          "uniform": { "scenario": "AR Assistant", "users": 2, "stagger_s": 0.01 }
        }
      }
    ]
  }
}
"#;

/// The default sweep: four Table 5 accelerators (one per dataflow
/// family) at two PE scalings × three schedulers over one scenario and
/// one fault-free two-group fleet. The recovery axis has two values
/// but every workload is fault-free, so the memo cache collapses it —
/// the committed sweep demonstrates a nonzero cache hit rate by
/// construction. All hardware points stay analyzer-clean (CI runs the
/// analyzer over `specs/`).
pub const SWEEP_DEFAULT: &str = r#"{
  "kind": "sweep",
  "name": "default-design-space",
  "accelerators": ["A", "D", "J", "M"],
  "base_pes": 8192,
  "pe_scaling": [1.0, 0.5],
  "schedulers": ["latency-greedy", "round-robin", "slack-edf"],
  "recovery": ["drop", "requeue"],
  "workloads": [
    { "name": "vr-gaming", "scenario": "VR Gaming" },
    {
      "name": "mini-arcade",
      "fleet": {
        "name": "mini-arcade",
        "groups": [
          {
            "name": "vr",
            "replicas": 2,
            "session": {
              "name": "party",
              "uniform": { "scenario": "VR Gaming", "users": 2, "stagger_s": 0.002 }
            }
          },
          {
            "name": "assistant",
            "replicas": 1,
            "session": {
              "name": "walk",
              "uniform": { "scenario": "AR Assistant", "users": 1, "stagger_s": 0.01 }
            }
          }
        ]
      }
    }
  ]
}
"#;

/// The default run documents, as `(file name, contents)` pairs.
pub fn default_documents() -> Vec<(&'static str, &'static str)> {
    vec![
        ("suite_default.json", SUITE_DEFAULT),
        ("session_default.json", SESSION_DEFAULT),
        ("fleet_default.json", FLEET_DEFAULT),
        ("sweep_default.json", SWEEP_DEFAULT),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrbench_core::RunDocument;

    #[test]
    fn default_documents_parse_as_their_kinds() {
        for (name, body) in default_documents() {
            let doc = RunDocument::from_json_str(body).unwrap_or_else(|e| panic!("{name}: {e}"));
            let expected = name.split('_').next().unwrap();
            assert_eq!(doc.kind(), expected, "{name}");
        }
    }

    #[test]
    fn scenario_file_names_are_slugs() {
        assert_eq!(
            scenario_file_name("Social Interaction A"),
            "social_interaction_a.json"
        );
        assert_eq!(scenario_file_name("VR Gaming"), "vr_gaming.json");
    }
}
