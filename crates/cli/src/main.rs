//! The `xrbench` binary: parse, execute, apply, exit.

use xrbench_cli::{apply, execute, Command};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = Command::parse(&args)
        .and_then(|cmd| execute(&cmd))
        .and_then(|out| apply(&out).map(|()| out.exit_code));
    match result {
        Ok(code) => {
            if code != 0 {
                std::process::exit(code);
            }
        }
        Err(e) => {
            eprintln!("xrbench: error: {e}");
            std::process::exit(e.code);
        }
    }
}
