//! The `xrbench` command-line driver.
//!
//! Turns the declarative workload subsystem into a benchmark *suite*
//! anyone can drive from text files: spec documents go in, the
//! library's report JSON comes out. Every run subcommand executes
//! through [`xrbench_core::RunDocument`] — the same validated entry
//! points the library exposes — so the CLI path is bit-for-bit
//! identical to the programmatic path (CI enforces this on every
//! push).
//!
//! ```text
//! xrbench run-suite   <SPEC.json> [--out FILE] [--strict]
//! xrbench run-session <SPEC.json> [--out FILE] [--strict]
//! xrbench run-fleet   <SPEC.json> [--out FILE] [--strict] [--compare-policies]
//!                     [--shards N [--max-procs M]] [--shard K/N]
//! xrbench sweep       <SPEC.json> [--out FILE] [--strict]
//!                     [--checkpoint FILE [--limit N]]
//!                     [--shards N [--max-procs M]] [--shard K/N]
//! xrbench analyze     <SPEC.json> [--json] [--accelerator ID] [--pes N]
//! xrbench gen-scenarios [--seed N] [--count N] [--out-dir DIR]
//!                       [--min-models N] [--max-models N]
//!                       [--feasible] [--accelerator ID] [--pes N]
//! xrbench list <models|scenarios|accelerators>
//! xrbench export-specs [--dir DIR]
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use xrbench_analysis::{
    analyze_fleet, analyze_run_document, analyze_scenario, analyze_session, Analysis,
    FeasibleSampling,
};
use xrbench_core::{RunDocument, Runner, SweepOptions, SweepShardState};
use xrbench_workload::{scenario_to_json, ScenarioCatalog, ScenarioSpace, UsageScenario};

pub mod export;

/// The usage text printed by `--help` and on argument errors.
pub const USAGE: &str = "\
xrbench — the XRBench benchmark suite driver

USAGE:
  xrbench run-suite   <SPEC.json> [--out FILE] [--strict]   run a `kind: suite` document
  xrbench run-session <SPEC.json> [--out FILE] [--strict]   run a `kind: session` document
  xrbench run-fleet   <SPEC.json> [--out FILE] [--strict]   run a `kind: fleet` document
                      [--compare-policies]       replay the fleet once per recovery
                                                 policy (drop / requeue / migrate)
                                                 under the identical fault timelines
                      [--shards N [--max-procs M]]  distribute the fleet across N child
                                                 OS processes (at most M alive at once)
                                                 and merge their partial states into a
                                                 report byte-identical to the
                                                 single-process run
                      [--shard K/N]              run only shard K of N and print the
                                                 partial shard state (what --shards
                                                 children do; composable by hand across
                                                 machines)
  xrbench sweep       <SPEC.json> [--out FILE] [--strict]   run a `kind: sweep` design-space
                                                 exploration document: the axis cross
                                                 product is evaluated through a memo
                                                 cache and folded into Pareto frontiers
                      [--checkpoint FILE]        persist completed points to FILE after
                                                 every evaluation and resume from an
                                                 existing FILE, so a killed sweep
                                                 continues where it stopped
                      [--limit N]                stop after N completed points without
                                                 reporting (requires --checkpoint; a
                                                 deterministic \"kill\" for testing
                                                 resumption)
                      [--shards N [--max-procs M]]  distribute the point list across N
                                                 child OS processes and merge, byte-
                                                 identical to the single-process sweep
                      [--shard K/N]              run only shard K of N and print the
                                                 partial sweep shard state
  xrbench analyze     <SPEC.json> [--json]       static schedulability analysis (XA###
                      [--accelerator ID] [--pes N]  diagnostics) of any spec file
  xrbench gen-scenarios [--seed N] [--count N] [--out-dir DIR]
                        [--min-models N] [--max-models N]
                        [--feasible] [--accelerator ID] [--pes N]
                                                 sample random valid scenarios
  xrbench list <models|scenarios|accelerators>   print the builtin catalogs
  xrbench export-specs [--dir DIR]               write the builtin specs (default: specs/)

Reports are the library's JSON, printed to stdout (or --out FILE).
`analyze` accepts run documents as well as bare scenario / session /
fleet specs; bare specs (and `gen-scenarios --feasible`) are analyzed
against accelerator --accelerator (default J) at --pes (default 8192)
PEs. `--strict` refuses run specs with analyzer errors; without it the
errors are printed as hints before the report. Diagnostics go to
stderr; exit code 0 on success (or a clean analysis), 1 on a spec/run
error or an analysis with errors, 2 on a usage error.";

/// A fatal CLI error with its exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Message for stderr.
    pub message: String,
    /// Process exit code (1 = spec/run error, 2 = usage error).
    pub code: i32,
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn usage_error(message: impl Into<String>) -> CliError {
    CliError {
        message: format!("{}\n\n{USAGE}", message.into()),
        code: 2,
    }
}

fn run_error(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
        code: 1,
    }
}

/// What `list` should print.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListKind {
    /// The eleven Table 1 unit models.
    Models,
    /// The seven builtin Table 2 scenarios.
    Scenarios,
    /// The thirteen Table 5 accelerator configurations.
    Accelerators,
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `run-suite` / `run-session` / `run-fleet`.
    Run {
        /// The document kind the subcommand requires (`suite`,
        /// `session`, or `fleet`).
        kind: &'static str,
        /// The spec file to load.
        spec: PathBuf,
        /// Where to write the report instead of stdout.
        out: Option<PathBuf>,
        /// Refuse to run when the analyzer reports errors.
        strict: bool,
        /// Run the fleet once per recovery policy and emit the
        /// comparison report instead (`run-fleet` only).
        compare: bool,
        /// Child mode: run only shard `K` of `N` and print the
        /// partial [`xrbench_fleet::ShardState`] JSON (`run-fleet`
        /// only).
        shard: Option<(u32, u32)>,
        /// Coordinator mode: distribute the fleet across this many
        /// child processes and merge (`run-fleet` only).
        shards: Option<u32>,
        /// Bound on concurrently-alive shard children (requires
        /// `--shards`; defaults to the fleet worker heuristic).
        max_procs: Option<usize>,
    },
    /// `sweep`.
    Sweep {
        /// The sweep document to run.
        spec: PathBuf,
        /// Where to write the report instead of stdout.
        out: Option<PathBuf>,
        /// Refuse to run when the analyzer reports errors.
        strict: bool,
        /// Persist completed points here after every evaluation and
        /// resume from an existing file.
        checkpoint: Option<PathBuf>,
        /// Stop after this many completed points without reporting
        /// (requires `--checkpoint`).
        limit: Option<usize>,
        /// Child mode: run only shard `K` of `N` and print the
        /// partial [`xrbench_core::SweepShardState`] JSON.
        shard: Option<(u32, u32)>,
        /// Coordinator mode: distribute the point list across this
        /// many child processes and merge.
        shards: Option<u32>,
        /// Bound on concurrently-alive shard children (requires
        /// `--shards`; defaults to the fleet worker heuristic).
        max_procs: Option<usize>,
    },
    /// `analyze`.
    Analyze {
        /// The spec file to analyze (run document or bare
        /// scenario / session / fleet spec).
        spec: PathBuf,
        /// Emit the stable JSON form instead of the human rendering.
        json: bool,
        /// Accelerator id for bare specs (Table 5 letter).
        accelerator: char,
        /// PE count for bare specs.
        pes: u64,
    },
    /// `gen-scenarios`.
    GenScenarios {
        /// Base seed (consecutive seeds sample the scenarios).
        seed: u64,
        /// How many scenarios to sample.
        count: u32,
        /// Write one file per scenario here instead of a JSON array
        /// on stdout.
        out_dir: Option<PathBuf>,
        /// Override the space's minimum model count.
        min_models: Option<usize>,
        /// Override the space's maximum model count.
        max_models: Option<usize>,
        /// Re-sample until each draw is analyzer-clean.
        feasible: bool,
        /// Accelerator id the feasibility filter analyzes against.
        accelerator: char,
        /// PE count the feasibility filter analyzes against.
        pes: u64,
    },
    /// `list`.
    List(ListKind),
    /// `export-specs`.
    ExportSpecs {
        /// Target directory (default `specs/`).
        dir: PathBuf,
    },
    /// `--help` / `help`.
    Help,
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, CliError> {
    let value = value.ok_or_else(|| usage_error(format!("{flag} needs a value")))?;
    value
        .parse()
        .map_err(|_| usage_error(format!("invalid value for {flag}: `{value}`")))
}

/// Parses a `K/N` shard coordinate (`0 ≤ K < N`).
fn parse_shard(value: &str) -> Result<(u32, u32), CliError> {
    let err = || {
        usage_error(format!(
            "invalid value for --shard: `{value}` (expected K/N with K < N)"
        ))
    };
    let (k, n) = value.split_once('/').ok_or_else(err)?;
    let k: u32 = k.parse().map_err(|_| err())?;
    let n: u32 = n.parse().map_err(|_| err())?;
    if n == 0 || k >= n {
        return Err(err());
    }
    Ok((k, n))
}

impl Command {
    /// Parses the arguments after the program name.
    ///
    /// # Errors
    ///
    /// Returns a code-2 [`CliError`] (with usage text) for unknown
    /// subcommands, missing operands, or malformed flag values.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut it = args.iter().cloned();
        let Some(sub) = it.next() else {
            return Err(usage_error("missing subcommand"));
        };
        match sub.as_str() {
            "--help" | "-h" | "help" => Ok(Command::Help),
            "run-suite" | "run-session" | "run-fleet" => {
                let kind = &sub["run-".len()..];
                let kind = match kind {
                    "suite" => "suite",
                    "session" => "session",
                    _ => "fleet",
                };
                let mut spec = None;
                let mut out = None;
                let mut strict = false;
                let mut compare = false;
                let mut shard = None;
                let mut shards = None;
                let mut max_procs = None;
                while let Some(arg) = it.next() {
                    match arg.as_str() {
                        "--out" => {
                            out = Some(PathBuf::from(parse_value::<String>("--out", it.next())?))
                        }
                        "--strict" => strict = true,
                        "--compare-policies" => compare = true,
                        "--shard" => {
                            let value: String = parse_value("--shard", it.next())?;
                            shard = Some(parse_shard(&value)?);
                        }
                        "--shards" => shards = Some(parse_value::<u32>("--shards", it.next())?),
                        "--max-procs" => {
                            max_procs = Some(parse_value::<usize>("--max-procs", it.next())?)
                        }
                        _ if arg.starts_with('-') => {
                            return Err(usage_error(format!("unknown flag `{arg}`")))
                        }
                        _ if spec.is_none() => spec = Some(PathBuf::from(arg)),
                        _ => return Err(usage_error(format!("unexpected argument `{arg}`"))),
                    }
                }
                if compare && kind != "fleet" {
                    return Err(usage_error(
                        "--compare-policies is only valid with run-fleet",
                    ));
                }
                if (shard.is_some() || shards.is_some()) && kind != "fleet" {
                    return Err(usage_error(
                        "--shard/--shards are only valid with run-fleet",
                    ));
                }
                if shard.is_some() && shards.is_some() {
                    return Err(usage_error(
                        "--shard (child mode) and --shards (coordinator mode) are mutually \
                         exclusive",
                    ));
                }
                if compare && (shard.is_some() || shards.is_some()) {
                    return Err(usage_error(
                        "--compare-policies cannot be combined with --shard/--shards",
                    ));
                }
                if shards == Some(0) {
                    return Err(usage_error("--shards needs at least one shard"));
                }
                if max_procs.is_some() && shards.is_none() {
                    return Err(usage_error("--max-procs requires --shards"));
                }
                if max_procs == Some(0) {
                    return Err(usage_error("--max-procs needs at least one process"));
                }
                let spec =
                    spec.ok_or_else(|| usage_error(format!("{sub} needs a spec file argument")))?;
                Ok(Command::Run {
                    kind,
                    spec,
                    out,
                    strict,
                    compare,
                    shard,
                    shards,
                    max_procs,
                })
            }
            "sweep" => {
                let mut spec = None;
                let mut out = None;
                let mut strict = false;
                let mut checkpoint = None;
                let mut limit = None;
                let mut shard = None;
                let mut shards = None;
                let mut max_procs = None;
                while let Some(arg) = it.next() {
                    match arg.as_str() {
                        "--out" => {
                            out = Some(PathBuf::from(parse_value::<String>("--out", it.next())?))
                        }
                        "--strict" => strict = true,
                        "--checkpoint" => {
                            checkpoint = Some(PathBuf::from(parse_value::<String>(
                                "--checkpoint",
                                it.next(),
                            )?))
                        }
                        "--limit" => limit = Some(parse_value::<usize>("--limit", it.next())?),
                        "--shard" => {
                            let value: String = parse_value("--shard", it.next())?;
                            shard = Some(parse_shard(&value)?);
                        }
                        "--shards" => shards = Some(parse_value::<u32>("--shards", it.next())?),
                        "--max-procs" => {
                            max_procs = Some(parse_value::<usize>("--max-procs", it.next())?)
                        }
                        _ if arg.starts_with('-') => {
                            return Err(usage_error(format!("unknown flag `{arg}`")))
                        }
                        _ if spec.is_none() => spec = Some(PathBuf::from(arg)),
                        _ => return Err(usage_error(format!("unexpected argument `{arg}`"))),
                    }
                }
                if limit.is_some() && checkpoint.is_none() {
                    return Err(usage_error(
                        "--limit requires --checkpoint (the partial progress must land \
                         somewhere a later run can resume from)",
                    ));
                }
                if limit == Some(0) {
                    return Err(usage_error("--limit needs at least one point"));
                }
                if (checkpoint.is_some() || limit.is_some())
                    && (shard.is_some() || shards.is_some())
                {
                    return Err(usage_error(
                        "--checkpoint/--limit cannot be combined with --shard/--shards",
                    ));
                }
                if shard.is_some() && shards.is_some() {
                    return Err(usage_error(
                        "--shard (child mode) and --shards (coordinator mode) are mutually \
                         exclusive",
                    ));
                }
                if shards == Some(0) {
                    return Err(usage_error("--shards needs at least one shard"));
                }
                if max_procs.is_some() && shards.is_none() {
                    return Err(usage_error("--max-procs requires --shards"));
                }
                if max_procs == Some(0) {
                    return Err(usage_error("--max-procs needs at least one process"));
                }
                let spec = spec.ok_or_else(|| usage_error("sweep needs a spec file argument"))?;
                Ok(Command::Sweep {
                    spec,
                    out,
                    strict,
                    checkpoint,
                    limit,
                    shard,
                    shards,
                    max_procs,
                })
            }
            "analyze" => {
                let mut spec = None;
                let mut json = false;
                let mut accelerator = 'J';
                let mut pes = 8192u64;
                while let Some(arg) = it.next() {
                    match arg.as_str() {
                        "--json" => json = true,
                        "--accelerator" => accelerator = parse_value("--accelerator", it.next())?,
                        "--pes" => pes = parse_value("--pes", it.next())?,
                        _ if arg.starts_with('-') => {
                            return Err(usage_error(format!("unknown flag `{arg}`")))
                        }
                        _ if spec.is_none() => spec = Some(PathBuf::from(arg)),
                        _ => return Err(usage_error(format!("unexpected argument `{arg}`"))),
                    }
                }
                let spec = spec.ok_or_else(|| usage_error("analyze needs a spec file argument"))?;
                Ok(Command::Analyze {
                    spec,
                    json,
                    accelerator,
                    pes,
                })
            }
            "gen-scenarios" => {
                let mut seed = 0u64;
                let mut count = 8u32;
                let mut out_dir = None;
                let mut min_models = None;
                let mut max_models = None;
                let mut feasible = false;
                let mut accelerator = 'J';
                let mut pes = 8192u64;
                while let Some(arg) = it.next() {
                    match arg.as_str() {
                        "--seed" => seed = parse_value("--seed", it.next())?,
                        "--count" => count = parse_value("--count", it.next())?,
                        "--feasible" => feasible = true,
                        "--accelerator" => accelerator = parse_value("--accelerator", it.next())?,
                        "--pes" => pes = parse_value("--pes", it.next())?,
                        "--min-models" => {
                            min_models = Some(parse_value("--min-models", it.next())?)
                        }
                        "--max-models" => {
                            max_models = Some(parse_value("--max-models", it.next())?)
                        }
                        "--out-dir" => {
                            out_dir = Some(PathBuf::from(parse_value::<String>(
                                "--out-dir",
                                it.next(),
                            )?))
                        }
                        _ => return Err(usage_error(format!("unknown argument `{arg}`"))),
                    }
                }
                if count == 0 {
                    return Err(usage_error("--count must be at least 1"));
                }
                Ok(Command::GenScenarios {
                    seed,
                    count,
                    out_dir,
                    min_models,
                    max_models,
                    feasible,
                    accelerator,
                    pes,
                })
            }
            "list" => {
                let what = it.next().ok_or_else(|| {
                    usage_error("list needs one of: models, scenarios, accelerators")
                })?;
                if let Some(extra) = it.next() {
                    return Err(usage_error(format!("unexpected argument `{extra}`")));
                }
                match what.as_str() {
                    "models" => Ok(Command::List(ListKind::Models)),
                    "scenarios" => Ok(Command::List(ListKind::Scenarios)),
                    "accelerators" => Ok(Command::List(ListKind::Accelerators)),
                    other => Err(usage_error(format!(
                        "unknown list target `{other}` (expected models, scenarios, or accelerators)"
                    ))),
                }
            }
            "export-specs" => {
                let mut dir = PathBuf::from("specs");
                while let Some(arg) = it.next() {
                    match arg.as_str() {
                        "--dir" => dir = PathBuf::from(parse_value::<String>("--dir", it.next())?),
                        _ => return Err(usage_error(format!("unknown argument `{arg}`"))),
                    }
                }
                Ok(Command::ExportSpecs { dir })
            }
            other => Err(usage_error(format!(
                "unknown subcommand `{other}` (expected run-suite, run-session, run-fleet, \
                 sweep, analyze, gen-scenarios, list, export-specs, or help)"
            ))),
        }
    }
}

/// What an executed command wants done with the world: text for
/// stdout, files to write, and lines for stderr.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Output {
    /// Text for stdout (already newline-terminated when non-empty).
    pub stdout: String,
    /// Files to write, in order.
    pub files: Vec<(PathBuf, String)>,
    /// Progress lines for stderr.
    pub notes: Vec<String>,
    /// Process exit code after a successful apply (non-zero when an
    /// analysis carried errors).
    pub exit_code: i32,
}

/// Executes a parsed command, returning its output (pure except for
/// reading the spec file — and, under `run-fleet --shards N` /
/// `sweep --shards N`, spawning the shard child processes whose
/// states it merges, plus the checkpoint file `sweep --checkpoint`
/// maintains).
///
/// # Errors
///
/// Returns a [`CliError`] carrying the exit code: 1 for unreadable or
/// invalid specs and failed shard children, 2 never (usage errors are
/// caught at parse time).
pub fn execute(command: &Command) -> Result<Output, CliError> {
    match command {
        Command::Help => Ok(Output {
            stdout: format!("{USAGE}\n"),
            ..Output::default()
        }),
        Command::Run {
            kind,
            spec,
            out,
            strict,
            compare,
            shard,
            shards,
            max_procs,
        } => run_document(
            kind,
            spec,
            out.as_deref(),
            *strict,
            *compare,
            *shard,
            shards.map(|n| (n, max_procs.unwrap_or_else(default_max_procs))),
        ),
        Command::Sweep {
            spec,
            out,
            strict,
            checkpoint,
            limit,
            shard,
            shards,
            max_procs,
        } => run_sweep(SweepParams {
            spec,
            out: out.as_deref(),
            strict: *strict,
            checkpoint: checkpoint.as_deref(),
            limit: *limit,
            shard: *shard,
            shards: shards.map(|n| (n, max_procs.unwrap_or_else(default_max_procs))),
        }),
        Command::Analyze {
            spec,
            json,
            accelerator,
            pes,
        } => analyze_file(spec, *json, *accelerator, *pes),
        Command::GenScenarios {
            seed,
            count,
            out_dir,
            min_models,
            max_models,
            feasible,
            accelerator,
            pes,
        } => gen_scenarios(GenParams {
            seed: *seed,
            count: *count,
            out_dir: out_dir.as_deref(),
            min_models: *min_models,
            max_models: *max_models,
            feasible: *feasible,
            accelerator: *accelerator,
            pes: *pes,
        }),
        Command::List(kind) => Ok(Output {
            stdout: list(*kind),
            ..Output::default()
        }),
        Command::ExportSpecs { dir } => Ok(export_specs(dir)),
    }
}

/// The default bound on concurrently-alive shard children: the same
/// heuristic as the in-process worker pool. Each child runs its own
/// pool over its shard's sessions, so the coordinator's job is to
/// stop N × workers threads from landing on one machine at once.
fn default_max_procs() -> usize {
    xrbench_fleet::default_workers()
}

/// Loads a run document, enforces the subcommand's expected kind, and
/// runs the up-front static analysis (refusing under `--strict`,
/// emitting hint notes otherwise). Shared by every run subcommand.
fn load_checked(
    kind: &str,
    spec: &Path,
    strict: bool,
) -> Result<(RunDocument, Vec<String>), CliError> {
    let text = fs::read_to_string(spec)
        .map_err(|e| run_error(format!("cannot read {}: {e}", spec.display())))?;
    let doc = RunDocument::from_json_str(&text)
        .map_err(|e| run_error(format!("{}: {e}", spec.display())))?;
    if doc.kind() != kind {
        // The subcommand is the kind's stem with a `run-` prefix for
        // the three classic kinds; `sweep` is its own subcommand.
        let subcommand = match doc.kind() {
            "sweep" => "sweep".to_string(),
            other => format!("run-{other}"),
        };
        return Err(run_error(format!(
            "{}: document kind is `{}` — use `xrbench {}` for it",
            spec.display(),
            doc.kind(),
            subcommand
        )));
    }
    // Statically-infeasible specs would otherwise surface only as
    // opaque drop counters in a zero-score report: surface the
    // analyzer's verdict up front (or refuse outright under --strict).
    let analysis = analyze_run_document(&doc);
    let mut notes = Vec::new();
    if analysis.has_errors() {
        let lines: Vec<String> = analysis.errors().map(|d| d.render()).collect();
        if strict {
            return Err(run_error(format!(
                "{}: refusing statically-infeasible spec (--strict):\n{}",
                spec.display(),
                lines.join("\n")
            )));
        }
        notes.extend(lines.into_iter().map(|l| format!("analyze: {l}")));
        notes.push(
            "analyze: the spec is statically infeasible — expect drops; pass --strict to refuse \
             such runs"
                .to_string(),
        );
    }
    Ok((doc, notes))
}

/// Packages a report (already newline-terminated) for `--out FILE` or
/// stdout, carrying the accumulated stderr notes.
fn package(report: String, out: Option<&Path>, mut notes: Vec<String>) -> Output {
    match out {
        Some(path) => {
            notes.push(format!("report written to {}", path.display()));
            Output {
                files: vec![(path.to_path_buf(), report)],
                notes,
                ..Output::default()
            }
        }
        None => Output {
            stdout: report,
            notes,
            ..Output::default()
        },
    }
}

fn run_document(
    kind: &str,
    spec: &Path,
    out: Option<&Path>,
    strict: bool,
    compare: bool,
    shard: Option<(u32, u32)>,
    shards: Option<(u32, usize)>,
) -> Result<Output, CliError> {
    let (doc, mut notes) = load_checked(kind, spec, strict)?;
    let report = match (&doc, compare, shard, shards) {
        // The parser only accepts --compare-policies and
        // --shard/--shards with run-fleet, and the kind check above
        // guarantees the document matches.
        (RunDocument::Fleet(run), true, _, _) => {
            let comparison = run.compare_policies();
            notes.extend(comparison.render_table().lines().map(str::to_string));
            comparison.to_json()
        }
        // Child mode: run one shard, embed this process's peak RSS,
        // and emit the partial state instead of a report.
        (RunDocument::Fleet(run), false, Some((k, n)), _) => {
            let mut state = run.run_shard(k, n);
            state.peak_rss_mib = peak_rss_mib();
            state.to_json()
        }
        // Coordinator mode: fork/exec one child per shard and merge
        // their states into the ordinary fleet report.
        (RunDocument::Fleet(run), false, None, Some((n, max_procs))) => {
            run_sharded(run, spec, n, max_procs, &mut notes)?
        }
        // Plain runs all dispatch through the unified `Runner` — the
        // same entry point library callers use, so the CLI path stays
        // bit-for-bit identical to the programmatic one.
        _ => Runner::new()
            .run(&doc)
            .map_err(|e| run_error(format!("{}: {e}", spec.display())))?
            .to_json(),
    } + "\n";
    Ok(package(report, out, notes))
}

/// Bundled `sweep` execution parameters.
struct SweepParams<'a> {
    spec: &'a Path,
    out: Option<&'a Path>,
    strict: bool,
    checkpoint: Option<&'a Path>,
    limit: Option<usize>,
    shard: Option<(u32, u32)>,
    shards: Option<(u32, usize)>,
}

fn run_sweep(params: SweepParams<'_>) -> Result<Output, CliError> {
    let SweepParams {
        spec,
        out,
        strict,
        checkpoint,
        limit,
        shard,
        shards,
    } = params;
    let (doc, mut notes) = load_checked("sweep", spec, strict)?;
    let RunDocument::Sweep(run) = &doc else {
        // load_checked verified kind() == "sweep".
        unreachable!("kind check admits only sweep documents");
    };
    // Child mode: evaluate one slice of the point list and emit the
    // partial shard state for the coordinator to merge.
    if let Some((k, n)) = shard {
        return Ok(package(run.run_shard(k, n).to_json() + "\n", out, notes));
    }
    // Coordinator mode: fork/exec one child per shard and merge.
    if let Some((n, max_procs)) = shards {
        let report = run_sweep_sharded(run, spec, n, max_procs, &mut notes)?;
        return Ok(package(report + "\n", out, notes));
    }
    let options = SweepOptions {
        checkpoint: checkpoint.map(Path::to_path_buf),
        limit,
    };
    let outcome = run
        .run_with(&options)
        .map_err(|e| run_error(format!("{}: {e}", spec.display())))?;
    let stats = outcome.stats;
    if stats.resumed > 0 {
        notes.push(format!(
            "resumed {} completed points from the checkpoint",
            stats.resumed
        ));
    }
    let served = stats.evaluated + stats.cache_hits;
    let hit_rate = if served == 0 {
        0.0
    } else {
        100.0 * stats.cache_hits as f64 / served as f64
    };
    notes.push(format!(
        "{} points: {} evaluated, {} cache hits ({hit_rate:.0}% hit rate), {} resumed",
        stats.points, stats.evaluated, stats.cache_hits, stats.resumed
    ));
    match outcome.report {
        Some(report) => Ok(package(report.to_json() + "\n", out, notes)),
        None => {
            // --limit stopped the sweep early: the progress lives in
            // the checkpoint file; there is nothing to report yet.
            let done = stats.resumed + served;
            notes.push(format!(
                "stopped by --limit with {done}/{} points checkpointed — rerun without --limit \
                 to finish",
                stats.points
            ));
            Ok(Output {
                notes,
                ..Output::default()
            })
        }
    }
}

/// Coordinator mode for `sweep --shards N`: re-execs this binary once
/// per shard (`sweep <spec> --shard k/N`), reads each child's
/// [`xrbench_core::SweepShardState`] from its stdout pipe, and merges
/// the states into a report byte-identical to the single-process
/// sweep. At most `max_procs` children are alive at once (see
/// [`xrbench_fleet::supervise`]).
fn run_sweep_sharded(
    run: &xrbench_core::SweepDocument,
    spec: &Path,
    num_shards: u32,
    max_procs: usize,
    notes: &mut Vec<String>,
) -> Result<String, CliError> {
    let exe = std::env::current_exe()
        .map_err(|e| run_error(format!("cannot locate the xrbench binary to re-exec: {e}")))?;
    notes.push(format!(
        "sharding across {num_shards} child processes (≤ {max_procs} concurrent)"
    ));
    let outputs = xrbench_fleet::supervise(num_shards, max_procs, &mut |k| {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("sweep")
            .arg(spec)
            .arg("--shard")
            .arg(format!("{k}/{num_shards}"));
        cmd
    })
    .map_err(|e| run_error(e.to_string()))?;
    let mut states = Vec::with_capacity(outputs.len());
    for (k, text) in outputs.iter().enumerate() {
        states.push(
            SweepShardState::from_json(text.trim())
                .map_err(|e| run_error(format!("shard {k} returned an unreadable state: {e}")))?,
        );
    }
    let evaluated: usize = states.iter().map(|s| s.evaluated).sum();
    let cache_hits: usize = states.iter().map(|s| s.cache_hits).sum();
    notes.push(format!(
        "shard children: {evaluated} evaluated, {cache_hits} cache hits"
    ));
    let report = run
        .merge_shards(&states)
        .map_err(|e| run_error(format!("merging sweep shard states: {e}")))?;
    Ok(report.to_json())
}

/// Coordinator mode for `run-fleet --shards N`: re-execs this binary
/// once per shard (`run-fleet <spec> --shard k/N`), reads each
/// child's [`xrbench_fleet::ShardState`] from its stdout pipe, and
/// merges the states into a report byte-identical to the
/// single-process run. At most `max_procs` children are alive at
/// once; a failing child is retried once before the run aborts with
/// its stderr (see [`xrbench_fleet::supervise`]).
fn run_sharded(
    run: &xrbench_core::FleetRun,
    spec: &Path,
    num_shards: u32,
    max_procs: usize,
    notes: &mut Vec<String>,
) -> Result<String, CliError> {
    let exe = std::env::current_exe()
        .map_err(|e| run_error(format!("cannot locate the xrbench binary to re-exec: {e}")))?;
    notes.push(format!(
        "sharding across {num_shards} child processes (≤ {max_procs} concurrent)"
    ));
    let outputs = xrbench_fleet::supervise(num_shards, max_procs, &mut |k| {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("run-fleet")
            .arg(spec)
            .arg("--shard")
            .arg(format!("{k}/{num_shards}"));
        cmd
    })
    .map_err(|e| run_error(e.to_string()))?;
    let mut states = Vec::with_capacity(outputs.len());
    for (k, text) in outputs.iter().enumerate() {
        states.push(
            xrbench_fleet::ShardState::from_json(text.trim())
                .map_err(|e| run_error(format!("shard {k} returned an unreadable state: {e}")))?,
        );
    }
    let child_rss: Vec<f64> = states.iter().filter_map(|s| s.peak_rss_mib).collect();
    if let Some(max_rss) = child_rss.iter().copied().reduce(f64::max) {
        notes.push(format!("max shard-child peak RSS: {max_rss:.1} MiB"));
    }
    let report = run
        .merge_shards(&states)
        .map_err(|e| run_error(format!("merging shard states: {e}")))?;
    Ok(report.to_json())
}

/// This process's peak resident set size in MiB (Linux `VmHWM`), if
/// the platform exposes it. Shard children embed it in their state so
/// the coordinator — and the CI gate — can observe per-process
/// memory without OS-specific tooling on the outside.
fn peak_rss_mib() -> Option<f64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib / 1024.0)
}

/// Builds the default system bare specs are analyzed against: a Table
/// 5 accelerator instantiated at a PE count.
fn default_system(
    accelerator: char,
    pes: u64,
) -> Result<xrbench_accel::AcceleratorSystem, CliError> {
    let config = xrbench_accel::config_by_id(accelerator).ok_or_else(|| {
        run_error(format!(
            "unknown accelerator `{accelerator}` (expected a Table 5 letter A-M)"
        ))
    })?;
    Ok(xrbench_accel::AcceleratorSystem::new(config, pes))
}

/// Loads any spec file — run document or bare scenario / session /
/// fleet spec — and analyzes it. Bare specs (which carry no system)
/// are analyzed against [`default_system`].
fn load_analysis(spec: &Path, accelerator: char, pes: u64) -> Result<Analysis, CliError> {
    let text = fs::read_to_string(spec)
        .map_err(|e| run_error(format!("cannot read {}: {e}", spec.display())))?;
    let value = xrbench_workload::spec::parse_json(&text)
        .map_err(|e| run_error(format!("{}: {e}", spec.display())))?;
    let root = serde::de::Cursor::root(&value);
    let has = |field: &str| matches!(root.opt_field(field), Ok(Some(_)));
    let spec_err = |e: &dyn fmt::Display| run_error(format!("{}: {e}", spec.display()));
    if has("kind") {
        let doc = RunDocument::from_json_str(&text).map_err(|e| spec_err(&e))?;
        Ok(analyze_run_document(&doc))
    } else if has("groups") {
        let fleet = xrbench_fleet::fleet_from_str(&text, &ScenarioCatalog::builtin())
            .map_err(|e| spec_err(&e))?;
        Ok(analyze_fleet(&fleet, &default_system(accelerator, pes)?))
    } else if has("models") {
        let scenario = xrbench_workload::scenario_from_str(&text).map_err(|e| spec_err(&e))?;
        Ok(analyze_scenario(
            &scenario,
            &default_system(accelerator, pes)?,
        ))
    } else if has("users") || has("uniform") || has("mixed") {
        let session = xrbench_workload::session_from_str(&text, &ScenarioCatalog::builtin())
            .map_err(|e| spec_err(&e))?;
        Ok(analyze_session(
            &session,
            &default_system(accelerator, pes)?,
        ))
    } else {
        Err(run_error(format!(
            "{}: not a recognizable spec (expected a `kind` run document, or a scenario / \
             session / fleet spec)",
            spec.display()
        )))
    }
}

fn analyze_file(spec: &Path, json: bool, accelerator: char, pes: u64) -> Result<Output, CliError> {
    let analysis = load_analysis(spec, accelerator, pes)?;
    let stdout = if json {
        analysis.to_json() + "\n"
    } else {
        analysis.to_text()
    };
    Ok(Output {
        stdout,
        exit_code: i32::from(analysis.has_errors()),
        ..Output::default()
    })
}

/// Bundled `gen-scenarios` parameters.
struct GenParams<'a> {
    seed: u64,
    count: u32,
    out_dir: Option<&'a Path>,
    min_models: Option<usize>,
    max_models: Option<usize>,
    feasible: bool,
    accelerator: char,
    pes: u64,
}

fn gen_scenarios(params: GenParams<'_>) -> Result<Output, CliError> {
    let GenParams {
        seed,
        count,
        out_dir,
        min_models,
        max_models,
        feasible,
        accelerator,
        pes,
    } = params;
    let mut space = ScenarioSpace::default();
    if let Some(min) = min_models {
        space.min_models = min;
    }
    if let Some(max) = max_models {
        space.max_models = max;
    }
    if space.min_models < 1
        || space.min_models > space.max_models
        || space.max_models > xrbench_models::ModelId::ALL.len()
    {
        return Err(run_error(format!(
            "model count bounds must satisfy 1 <= min <= max <= {}, got {}..={}",
            xrbench_models::ModelId::ALL.len(),
            space.min_models,
            space.max_models
        )));
    }
    let specs = if feasible {
        let system = default_system(accelerator, pes)?;
        space
            .feasible_only(&system)
            .try_sample_many(seed, count)
            .map_err(|e| run_error(e.to_string()))?
    } else {
        space.sample_many(seed, count)
    };
    match out_dir {
        Some(dir) => {
            let mut output = Output::default();
            for (i, spec) in specs.iter().enumerate() {
                let path = dir.join(format!("sampled_{}.json", seed.wrapping_add(i as u64)));
                output.files.push((path, scenario_to_json(spec) + "\n"));
            }
            output.notes.push(format!(
                "{count} scenario specs written to {}",
                dir.display()
            ));
            Ok(output)
        }
        None => {
            // One JSON array on stdout: each element is a loadable
            // scenario document.
            let mut stdout = String::from("[\n");
            for (i, spec) in specs.iter().enumerate() {
                for line in scenario_to_json(spec).lines() {
                    stdout.push_str("  ");
                    stdout.push_str(line);
                    stdout.push('\n');
                }
                if i + 1 < specs.len() {
                    stdout.truncate(stdout.len() - 1);
                    stdout.push_str(",\n");
                }
            }
            stdout.push_str("]\n");
            Ok(Output {
                stdout,
                ..Output::default()
            })
        }
    }
}

fn list(kind: ListKind) -> String {
    let mut out = String::new();
    match kind {
        ListKind::Models => {
            for m in xrbench_models::ModelId::ALL {
                out.push_str(&format!(
                    "{:<2}  {:<22}  {:<21}  {}\n",
                    m.abbrev(),
                    m.task_name(),
                    m.category().to_string(),
                    m.driving_source()
                ));
            }
        }
        ListKind::Scenarios => {
            for spec in ScenarioCatalog::builtin().iter() {
                let models: Vec<&str> = spec.models.iter().map(|m| m.model.abbrev()).collect();
                out.push_str(&format!(
                    "{:<20}  {} models [{}]{}  — {}\n",
                    spec.name,
                    spec.num_models(),
                    models.join(", "),
                    if spec.is_dynamic() { " (dynamic)" } else { "" },
                    spec.description
                ));
            }
        }
        ListKind::Accelerators => {
            for cfg in xrbench_accel::table5() {
                out.push_str(&format!(
                    "{}  {:<4}  {}\n",
                    cfg.id,
                    cfg.style.to_string(),
                    cfg.dataflow_description()
                ));
            }
        }
    }
    out
}

fn export_specs(dir: &Path) -> Output {
    let mut output = Output::default();
    for s in UsageScenario::ALL {
        let path = dir
            .join("scenarios")
            .join(export::scenario_file_name(&s.spec().name));
        output
            .files
            .push((path, scenario_to_json(&s.spec()) + "\n"));
    }
    for (name, body) in export::default_documents() {
        output.files.push((dir.join(name), body.to_string()));
    }
    output.notes.push(format!(
        "{} spec files written to {}",
        output.files.len(),
        dir.display()
    ));
    output
}

/// Applies an [`Output`] to the real world: writes files (creating
/// parent directories), prints stdout text, and emits notes on stderr.
///
/// # Errors
///
/// Returns a code-1 [`CliError`] if a file cannot be written.
pub fn apply(output: &Output) -> Result<(), CliError> {
    for (path, body) in &output.files {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)
                .map_err(|e| run_error(format!("cannot create {}: {e}", parent.display())))?;
        }
        fs::write(path, body)
            .map_err(|e| run_error(format!("cannot write {}: {e}", path.display())))?;
    }
    // Notes first, so analyzer hints land above the report when both
    // streams share a terminal.
    for note in &output.notes {
        eprintln!("xrbench: {note}");
    }
    if !output.stdout.is_empty() {
        print!("{}", output.stdout);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parses_run_subcommands() {
        let cmd = Command::parse(&args(&["run-suite", "specs/suite_default.json"])).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                kind: "suite",
                spec: PathBuf::from("specs/suite_default.json"),
                out: None,
                strict: false,
                compare: false,
                shard: None,
                shards: None,
                max_procs: None,
            }
        );
        let cmd = Command::parse(&args(&[
            "run-fleet",
            "f.json",
            "--out",
            "r.json",
            "--strict",
            "--compare-policies",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                kind: "fleet",
                spec: PathBuf::from("f.json"),
                out: Some(PathBuf::from("r.json")),
                strict: true,
                compare: true,
                shard: None,
                shards: None,
                max_procs: None,
            }
        );
    }

    #[test]
    fn parses_shard_flags() {
        let cmd = Command::parse(&args(&["run-fleet", "f.json", "--shard", "2/8"])).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                kind: "fleet",
                spec: PathBuf::from("f.json"),
                out: None,
                strict: false,
                compare: false,
                shard: Some((2, 8)),
                shards: None,
                max_procs: None,
            }
        );
        let cmd = Command::parse(&args(&[
            "run-fleet",
            "f.json",
            "--shards",
            "4",
            "--max-procs",
            "2",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                kind: "fleet",
                spec: PathBuf::from("f.json"),
                out: None,
                strict: false,
                compare: false,
                shard: None,
                shards: Some(4),
                max_procs: Some(2),
            }
        );
    }

    #[test]
    fn shard_flag_combinations_are_validated() {
        for bad in [
            vec!["run-suite", "s.json", "--shards", "2"],
            vec!["run-session", "s.json", "--shard", "0/2"],
            vec!["run-fleet", "f.json", "--shard", "0/2", "--shards", "2"],
            vec!["run-fleet", "f.json", "--shards", "2", "--compare-policies"],
            vec![
                "run-fleet",
                "f.json",
                "--shard",
                "0/2",
                "--compare-policies",
            ],
            vec!["run-fleet", "f.json", "--shards", "0"],
            vec!["run-fleet", "f.json", "--max-procs", "2"],
            vec!["run-fleet", "f.json", "--shards", "2", "--max-procs", "0"],
            vec!["run-fleet", "f.json", "--shard", "2/2"],
            vec!["run-fleet", "f.json", "--shard", "1"],
            vec!["run-fleet", "f.json", "--shard", "a/b"],
            vec!["run-fleet", "f.json", "--shard", "0/0"],
        ] {
            let err = Command::parse(&args(&bad)).unwrap_err();
            assert_eq!(err.code, 2, "{bad:?}");
        }
    }

    #[test]
    fn parses_sweep_flags() {
        let cmd = Command::parse(&args(&["sweep", "specs/sweep_default.json"])).unwrap();
        assert_eq!(
            cmd,
            Command::Sweep {
                spec: PathBuf::from("specs/sweep_default.json"),
                out: None,
                strict: false,
                checkpoint: None,
                limit: None,
                shard: None,
                shards: None,
                max_procs: None,
            }
        );
        let cmd = Command::parse(&args(&[
            "sweep",
            "s.json",
            "--out",
            "r.json",
            "--strict",
            "--checkpoint",
            "ck.json",
            "--limit",
            "5",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Sweep {
                spec: PathBuf::from("s.json"),
                out: Some(PathBuf::from("r.json")),
                strict: true,
                checkpoint: Some(PathBuf::from("ck.json")),
                limit: Some(5),
                shard: None,
                shards: None,
                max_procs: None,
            }
        );
        let cmd = Command::parse(&args(&["sweep", "s.json", "--shard", "1/4"])).unwrap();
        assert_eq!(
            cmd,
            Command::Sweep {
                spec: PathBuf::from("s.json"),
                out: None,
                strict: false,
                checkpoint: None,
                limit: None,
                shard: Some((1, 4)),
                shards: None,
                max_procs: None,
            }
        );
    }

    #[test]
    fn sweep_flag_combinations_are_validated() {
        for bad in [
            vec!["sweep"],
            vec!["sweep", "s.json", "--limit", "5"],
            vec!["sweep", "s.json", "--checkpoint", "c.json", "--limit", "0"],
            vec!["sweep", "s.json", "--checkpoint", "c.json", "--shards", "2"],
            vec![
                "sweep",
                "s.json",
                "--checkpoint",
                "c.json",
                "--shard",
                "0/2",
            ],
            vec!["sweep", "s.json", "--shard", "0/2", "--shards", "2"],
            vec!["sweep", "s.json", "--shards", "0"],
            vec!["sweep", "s.json", "--max-procs", "2"],
            vec!["sweep", "s.json", "--shards", "2", "--max-procs", "0"],
            vec!["sweep", "s.json", "--shard", "2/2"],
            vec!["sweep", "s.json", "--compare-policies"],
            vec!["sweep", "s.json", "extra.json"],
        ] {
            let err = Command::parse(&args(&bad)).unwrap_err();
            assert_eq!(err.code, 2, "{bad:?}");
        }
    }

    #[test]
    fn unknown_subcommand_enumerates_the_real_ones() {
        let err = Command::parse(&args(&["frobnicate"])).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("unknown subcommand `frobnicate`"));
        for sub in [
            "run-suite",
            "run-session",
            "run-fleet",
            "sweep",
            "analyze",
            "gen-scenarios",
            "list",
            "export-specs",
            "help",
        ] {
            assert!(
                err.message.contains(sub),
                "missing `{sub}`: {}",
                err.message
            );
        }
    }

    #[test]
    fn compare_policies_is_fleet_only() {
        for sub in ["run-suite", "run-session"] {
            let err = Command::parse(&args(&[sub, "s.json", "--compare-policies"])).unwrap_err();
            assert_eq!(err.code, 2, "{sub}");
            assert!(err.message.contains("only valid with run-fleet"), "{sub}");
        }
    }

    #[test]
    fn parses_analyze() {
        let cmd = Command::parse(&args(&["analyze", "s.json"])).unwrap();
        assert_eq!(
            cmd,
            Command::Analyze {
                spec: PathBuf::from("s.json"),
                json: false,
                accelerator: 'J',
                pes: 8192,
            }
        );
        let cmd = Command::parse(&args(&[
            "analyze",
            "s.json",
            "--json",
            "--accelerator",
            "A",
            "--pes",
            "4096",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Analyze {
                spec: PathBuf::from("s.json"),
                json: true,
                accelerator: 'A',
                pes: 4096,
            }
        );
    }

    #[test]
    fn parses_gen_and_list_and_export() {
        let cmd = Command::parse(&args(&[
            "gen-scenarios",
            "--seed",
            "42",
            "--count",
            "3",
            "--max-models",
            "4",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::GenScenarios {
                seed: 42,
                count: 3,
                out_dir: None,
                min_models: None,
                max_models: Some(4),
                feasible: false,
                accelerator: 'J',
                pes: 8192,
            }
        );
        assert_eq!(
            Command::parse(&args(&["list", "models"])).unwrap(),
            Command::List(ListKind::Models)
        );
        assert_eq!(
            Command::parse(&args(&["export-specs", "--dir", "x"])).unwrap(),
            Command::ExportSpecs {
                dir: PathBuf::from("x")
            }
        );
    }

    #[test]
    fn usage_errors_have_code_2() {
        for bad in [
            vec!["frobnicate"],
            vec![],
            vec!["run-suite"],
            vec!["run-suite", "a.json", "b.json"],
            vec!["list"],
            vec!["list", "sandwiches"],
            vec!["gen-scenarios", "--count", "zero"],
            vec!["gen-scenarios", "--count", "0"],
        ] {
            let err = Command::parse(&args(&bad)).unwrap_err();
            assert_eq!(err.code, 2, "{bad:?}");
            assert!(err.message.contains("USAGE"), "{bad:?}");
        }
    }

    #[test]
    fn missing_spec_file_is_a_run_error() {
        let err = execute(&Command::Run {
            kind: "suite",
            spec: PathBuf::from("/nonexistent/spec.json"),
            out: None,
            strict: false,
            compare: false,
            shard: None,
            shards: None,
            max_procs: None,
        })
        .unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("cannot read"), "{err}");
    }

    #[test]
    fn list_outputs_cover_the_catalogs() {
        let models = list(ListKind::Models);
        assert_eq!(models.lines().count(), 11);
        assert!(models.contains("Hand Tracking"));
        let scenarios = list(ListKind::Scenarios);
        assert_eq!(scenarios.lines().count(), 7);
        assert!(scenarios.contains("(dynamic)"));
        let accels = list(ListKind::Accelerators);
        assert_eq!(accels.lines().count(), 13);
        assert!(accels.contains("WS + OS (1:3 partitioning)"));
    }

    #[test]
    fn gen_scenarios_stdout_is_a_loadable_array() {
        let gen = Command::GenScenarios {
            seed: 5,
            count: 3,
            out_dir: None,
            min_models: None,
            max_models: None,
            feasible: false,
            accelerator: 'J',
            pes: 8192,
        };
        let out = execute(&gen).unwrap();
        let value = xrbench_workload::spec::parse_json(&out.stdout).unwrap();
        let items = serde::de::Cursor::root(&value).items().unwrap();
        assert_eq!(items.len(), 3);
        for item in &items {
            xrbench_workload::spec::scenario_from_value(item).unwrap();
        }
        // Deterministic for a fixed seed.
        assert_eq!(out, execute(&gen).unwrap());
    }

    #[test]
    fn feasible_gen_scenarios_are_analyzer_clean() {
        let gen = Command::GenScenarios {
            seed: 0,
            count: 4,
            out_dir: None,
            min_models: None,
            max_models: None,
            // J/4K is slow enough that some default-space samples are
            // infeasible, so the filter is exercised for real.
            feasible: true,
            accelerator: 'J',
            pes: 4096,
        };
        let out = execute(&gen).unwrap();
        let system = default_system('J', 4096).unwrap();
        let value = xrbench_workload::spec::parse_json(&out.stdout).unwrap();
        let items = serde::de::Cursor::root(&value).items().unwrap();
        assert_eq!(items.len(), 4);
        for item in &items {
            let spec = xrbench_workload::spec::scenario_from_value(item).unwrap();
            assert!(
                !analyze_scenario(&spec, &system).has_errors(),
                "{}",
                spec.name
            );
        }
        assert_eq!(out, execute(&gen).unwrap(), "feasible gen is deterministic");
    }

    #[test]
    fn export_specs_writes_scenarios_and_documents() {
        let out = export_specs(Path::new("specs"));
        assert_eq!(out.files.len(), 7 + export::default_documents().len());
        for (path, body) in &out.files {
            assert!(path.starts_with("specs"), "{}", path.display());
            assert!(body.ends_with('\n'), "{}", path.display());
        }
    }
}
