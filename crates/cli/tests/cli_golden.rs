//! End-to-end tests for the `xrbench` binary.
//!
//! Three invariants are pinned here, and re-checked by the `cli-smoke`
//! CI job on every push:
//!
//! 1. **`specs/` never drifts**: `export-specs` into a scratch
//!    directory must reproduce the committed `specs/` tree
//!    byte-for-byte.
//! 2. **CLI = library**: `run-suite specs/suite_default.json` must
//!    emit exactly the JSON the library's `run_suite` path produces
//!    (the quickstart configuration, XRBench Score 0.888).
//! 3. **Reports are frozen**: all three default run documents must
//!    reproduce the golden fixtures in `tests/fixtures/cli/`.
//!
//! To re-bless after an intentional change:
//!
//! ```sh
//! XRBENCH_BLESS=1 cargo test -p xrbench-cli
//! ```

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("workspace root exists")
}

fn bless() -> bool {
    std::env::var("XRBENCH_BLESS").is_ok_and(|v| v == "1")
}

fn xrbench(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xrbench"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("spawn xrbench")
}

fn stdout_of(args: &[&str]) -> String {
    let out = xrbench(args);
    assert!(
        out.status.success(),
        "xrbench {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 report")
}

/// A scratch directory unique to one test, cleaned up on entry.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xrbench-cli-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("readable dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            walk(&path, files);
        } else {
            files.push(path);
        }
    }
}

fn relative_files(dir: &Path) -> Vec<(PathBuf, String)> {
    let mut files = Vec::new();
    walk(dir, &mut files);
    let mut out: Vec<(PathBuf, String)> = files
        .into_iter()
        .map(|p| {
            let rel = p.strip_prefix(dir).expect("under root").to_path_buf();
            let body = fs::read_to_string(&p).unwrap_or_else(|e| panic!("{}: {e}", p.display()));
            (rel, body)
        })
        .collect();
    out.sort();
    out
}

#[test]
fn export_specs_matches_committed_directory() {
    let committed = repo_root().join("specs");
    if bless() {
        let out = xrbench(&["export-specs", "--dir", committed.to_str().unwrap()]);
        assert!(out.status.success());
        return;
    }
    let dir = scratch("export");
    let out = xrbench(&["export-specs", "--dir", dir.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let exported = relative_files(&dir);
    assert!(!exported.is_empty(), "export produced no files");
    let committed = relative_files(&committed);
    let names =
        |v: &[(PathBuf, String)]| -> Vec<PathBuf> { v.iter().map(|(p, _)| p.clone()).collect() };
    assert_eq!(
        names(&exported),
        names(&committed),
        "specs/ file set drifted from export-specs (re-bless with XRBENCH_BLESS=1)"
    );
    for ((path, exported_body), (_, committed_body)) in exported.iter().zip(&committed) {
        assert_eq!(
            exported_body,
            committed_body,
            "specs/{} drifted from export-specs (re-bless with XRBENCH_BLESS=1)",
            path.display()
        );
    }
}

#[test]
fn suite_cli_is_bit_identical_to_the_library_path() {
    use xrbench_accel::{config_by_id, AcceleratorSystem};
    use xrbench_core::{run_suite, Harness};

    // The library quickstart configuration: accelerator J at 8192 PEs,
    // 10 repeats, default seed and duration.
    let system = AcceleratorSystem::new(config_by_id('J').expect("J exists"), 8192);
    let expected = run_suite(&Harness::new(), &system, 10);

    let stdout = stdout_of(&["run-suite", "specs/suite_default.json"]);
    assert_eq!(
        stdout,
        expected.to_json() + "\n",
        "CLI suite report diverged from the library path"
    );
    assert!(
        (expected.xrbench_score - 0.888).abs() < 5e-4,
        "quickstart XRBench Score moved: {}",
        expected.xrbench_score
    );
}

#[test]
fn run_documents_match_golden_fixtures() {
    let fixture_dir = repo_root().join("tests").join("fixtures").join("cli");
    let cases = [
        (
            "run-suite",
            "specs/suite_default.json",
            "suite_default.report.json",
        ),
        (
            "run-session",
            "specs/session_default.json",
            "session_default.report.json",
        ),
        (
            "run-fleet",
            "specs/fleet_default.json",
            "fleet_default.report.json",
        ),
    ];
    if bless() {
        fs::create_dir_all(&fixture_dir).expect("create fixture dir");
    }
    let mut mismatches = Vec::new();
    for (subcommand, spec, fixture) in cases {
        let stdout = stdout_of(&[subcommand, spec]);
        let path = fixture_dir.join(fixture);
        if bless() {
            fs::write(&path, &stdout).expect("write fixture");
            continue;
        }
        let expected = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        if expected != stdout {
            mismatches.push(fixture);
        }
    }
    assert!(
        mismatches.is_empty(),
        "CLI reports diverge from golden fixtures: {mismatches:?} \
         (run with XRBENCH_BLESS=1 to re-bless after an intentional change)"
    );
}

#[test]
fn out_flag_writes_the_stdout_bytes() {
    let stdout = stdout_of(&["run-session", "specs/session_default.json"]);
    let dir = scratch("out");
    let out_file = dir.join("report.json");
    let run = xrbench(&[
        "run-session",
        "specs/session_default.json",
        "--out",
        out_file.to_str().unwrap(),
    ]);
    assert!(run.status.success());
    assert!(run.stdout.is_empty(), "--out must suppress stdout");
    assert_eq!(fs::read_to_string(&out_file).unwrap(), stdout);
}

#[test]
fn kind_mismatch_and_bad_specs_fail_cleanly() {
    // Suite subcommand on a session document: exit 1, points at the
    // right subcommand.
    let out = xrbench(&["run-suite", "specs/session_default.json"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("run-session"), "{stderr}");

    // Malformed JSON: exit 1 with the parser's diagnostic.
    let dir = scratch("badspec");
    let bad = dir.join("bad.json");
    fs::write(&bad, "{ not json").unwrap();
    let out = xrbench(&["run-suite", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("invalid JSON"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A semantically invalid spec: the builder's diagnostic reaches
    // stderr, with no panic.
    let invalid = dir.join("invalid.json");
    fs::write(
        &invalid,
        r#"{ "kind": "suite",
             "hardware": { "uniform": { "engines": 1, "latency_s": 0.001, "energy_j": 0.0 } },
             "scenarios": [ { "name": "x", "models": [
                 { "model": "KD", "target_fps": 10.0 } ] } ] }"#,
    )
    .unwrap();
    let out = xrbench(&["run-suite", invalid.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("exceeds its sensor's"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    // Usage errors exit 2.
    let out = xrbench(&["run-suite"]);
    assert_eq!(out.status.code(), Some(2));
    let out = xrbench(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn gen_scenarios_writes_loadable_deterministic_files() {
    let dir = scratch("gen");
    let out = xrbench(&[
        "gen-scenarios",
        "--seed",
        "42",
        "--count",
        "5",
        "--out-dir",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let files = relative_files(&dir);
    assert_eq!(files.len(), 5);
    for (name, body) in &files {
        let spec = xrbench_workload::scenario_from_str(body)
            .unwrap_or_else(|e| panic!("{}: {e}", name.display()));
        assert!(spec.name.starts_with("Sampled #"), "{}", spec.name);
    }
    // Same seed → same files.
    let dir2 = scratch("gen2");
    let out = xrbench(&[
        "gen-scenarios",
        "--seed",
        "42",
        "--count",
        "5",
        "--out-dir",
        dir2.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    assert_eq!(files, relative_files(&dir2));
}

#[test]
fn exported_scenarios_reload_into_the_builtin_catalog() {
    let scenarios_dir = repo_root().join("specs").join("scenarios");
    let mut loaded = 0;
    for (name, body) in relative_files(&scenarios_dir) {
        let spec = xrbench_workload::scenario_from_str(&body)
            .unwrap_or_else(|e| panic!("{}: {e}", name.display()));
        let builtin = xrbench_workload::ScenarioCatalog::builtin();
        assert_eq!(
            builtin.get(&spec.name),
            Some(&spec),
            "{}: committed spec drifted from the builtin scenario",
            name.display()
        );
        loaded += 1;
    }
    assert_eq!(loaded, 7, "expected the seven Table 2 scenario files");
}
