//! End-to-end tests for the `xrbench` binary.
//!
//! Three invariants are pinned here, and re-checked by the `cli-smoke`
//! CI job on every push:
//!
//! 1. **`specs/` never drifts**: `export-specs` into a scratch
//!    directory must reproduce the committed `specs/` tree
//!    byte-for-byte.
//! 2. **CLI = library**: `run-suite specs/suite_default.json` must
//!    emit exactly the JSON the library's `run_suite` path produces
//!    (the quickstart configuration, XRBench Score 0.888).
//! 3. **Reports are frozen**: all four default run documents must
//!    reproduce the golden fixtures in `tests/fixtures/cli/`.
//!
//! To re-bless after an intentional change:
//!
//! ```sh
//! XRBENCH_BLESS=1 cargo test -p xrbench-cli
//! ```

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("workspace root exists")
}

fn bless() -> bool {
    std::env::var("XRBENCH_BLESS").is_ok_and(|v| v == "1")
}

fn xrbench(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xrbench"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("spawn xrbench")
}

fn stdout_of(args: &[&str]) -> String {
    let out = xrbench(args);
    assert!(
        out.status.success(),
        "xrbench {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 report")
}

/// A scratch directory unique to one test, cleaned up on entry.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xrbench-cli-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("readable dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            walk(&path, files);
        } else {
            files.push(path);
        }
    }
}

fn relative_files(dir: &Path) -> Vec<(PathBuf, String)> {
    let mut files = Vec::new();
    walk(dir, &mut files);
    let mut out: Vec<(PathBuf, String)> = files
        .into_iter()
        .map(|p| {
            let rel = p.strip_prefix(dir).expect("under root").to_path_buf();
            let body = fs::read_to_string(&p).unwrap_or_else(|e| panic!("{}: {e}", p.display()));
            (rel, body)
        })
        .collect();
    out.sort();
    out
}

#[test]
fn export_specs_matches_committed_directory() {
    let committed = repo_root().join("specs");
    if bless() {
        let out = xrbench(&["export-specs", "--dir", committed.to_str().unwrap()]);
        assert!(out.status.success());
        return;
    }
    let dir = scratch("export");
    let out = xrbench(&["export-specs", "--dir", dir.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let exported = relative_files(&dir);
    assert!(!exported.is_empty(), "export produced no files");
    let committed = relative_files(&committed);
    let names =
        |v: &[(PathBuf, String)]| -> Vec<PathBuf> { v.iter().map(|(p, _)| p.clone()).collect() };
    assert_eq!(
        names(&exported),
        names(&committed),
        "specs/ file set drifted from export-specs (re-bless with XRBENCH_BLESS=1)"
    );
    for ((path, exported_body), (_, committed_body)) in exported.iter().zip(&committed) {
        assert_eq!(
            exported_body,
            committed_body,
            "specs/{} drifted from export-specs (re-bless with XRBENCH_BLESS=1)",
            path.display()
        );
    }
}

#[test]
fn suite_cli_is_bit_identical_to_the_library_path() {
    use xrbench_accel::{config_by_id, AcceleratorSystem};
    use xrbench_core::{run_suite, Harness};

    // The library quickstart configuration: accelerator J at 8192 PEs,
    // 10 repeats, default seed and duration.
    let system = AcceleratorSystem::new(config_by_id('J').expect("J exists"), 8192);
    let expected = run_suite(&Harness::new(), &system, 10);

    let stdout = stdout_of(&["run-suite", "specs/suite_default.json"]);
    assert_eq!(
        stdout,
        expected.to_json() + "\n",
        "CLI suite report diverged from the library path"
    );
    assert!(
        (expected.xrbench_score - 0.888).abs() < 5e-4,
        "quickstart XRBench Score moved: {}",
        expected.xrbench_score
    );
}

#[test]
fn run_documents_match_golden_fixtures() {
    let fixture_dir = repo_root().join("tests").join("fixtures").join("cli");
    let cases = [
        (
            "run-suite",
            "specs/suite_default.json",
            "suite_default.report.json",
        ),
        (
            "run-session",
            "specs/session_default.json",
            "session_default.report.json",
        ),
        (
            "run-fleet",
            "specs/fleet_default.json",
            "fleet_default.report.json",
        ),
        (
            "sweep",
            "specs/sweep_default.json",
            "sweep_default.report.json",
        ),
    ];
    if bless() {
        fs::create_dir_all(&fixture_dir).expect("create fixture dir");
    }
    let mut mismatches = Vec::new();
    for (subcommand, spec, fixture) in cases {
        let stdout = stdout_of(&[subcommand, spec]);
        let path = fixture_dir.join(fixture);
        if bless() {
            fs::write(&path, &stdout).expect("write fixture");
            continue;
        }
        let expected = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        if expected != stdout {
            mismatches.push(fixture);
        }
    }
    assert!(
        mismatches.is_empty(),
        "CLI reports diverge from golden fixtures: {mismatches:?} \
         (run with XRBENCH_BLESS=1 to re-bless after an intentional change)"
    );
}

#[test]
fn out_flag_writes_the_stdout_bytes() {
    let stdout = stdout_of(&["run-session", "specs/session_default.json"]);
    let dir = scratch("out");
    let out_file = dir.join("report.json");
    let run = xrbench(&[
        "run-session",
        "specs/session_default.json",
        "--out",
        out_file.to_str().unwrap(),
    ]);
    assert!(run.status.success());
    assert!(run.stdout.is_empty(), "--out must suppress stdout");
    assert_eq!(fs::read_to_string(&out_file).unwrap(), stdout);
}

#[test]
fn out_flag_failures_exit_nonzero_with_a_diagnostic() {
    // The --out parent collides with an existing *file*, so the
    // directory cannot be created: exit 1, a `cannot create`
    // diagnostic on stderr, and no panic.
    let dir = scratch("badout");
    let blocker = dir.join("blocker");
    fs::write(&blocker, "not a directory").unwrap();
    let nested = blocker.join("sub").join("report.json");
    let out = xrbench(&[
        "run-session",
        "specs/session_default.json",
        "--out",
        nested.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("cannot create"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    // The --out target itself is a directory: the write fails with
    // `cannot write`, again without a panic.
    let out = xrbench(&[
        "run-session",
        "specs/session_default.json",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("cannot write"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn compare_policies_replays_the_fleet_per_recovery_policy() {
    let dir = scratch("compare");
    let spec = dir.join("faulted_fleet.json");
    fs::write(
        &spec,
        r#"{
  "kind": "fleet",
  "hardware": { "accelerator": { "id": "J", "pes": 8192 } },
  "fleet": {
    "name": "churny",
    "groups": [
      {
        "name": "vr",
        "replicas": 2,
        "session": {
          "name": "party",
          "uniform": { "scenario": "VR Gaming", "users": 2, "stagger_s": 0.002 }
        },
        "faults": {
          "failure_rate_per_s": 2.0,
          "mean_downtime_s": 0.05,
          "preemption_rate_per_s": 4.0,
          "mean_preemption_s": 0.02
        }
      }
    ]
  }
}"#,
    )
    .unwrap();
    let out = xrbench(&["run-fleet", spec.to_str().unwrap(), "--compare-policies"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
    for policy in ["drop", "requeue", "migrate"] {
        assert!(
            stdout.contains(&format!("\"policy\": \"{policy}\"")),
            "missing `{policy}` row:\n{stdout}"
        );
    }
    // The human-readable comparison table lands on stderr.
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("policy"), "{stderr}");
    assert!(stderr.contains("migrate"), "{stderr}");

    // Byte-identical on replay: the comparison shares one fault seed.
    let again = xrbench(&["run-fleet", spec.to_str().unwrap(), "--compare-policies"]);
    assert_eq!(again.stdout, stdout.as_bytes());

    // The flag is fleet-only: usage error (exit 2) elsewhere.
    let out = xrbench(&[
        "run-session",
        "specs/session_default.json",
        "--compare-policies",
    ]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn sharded_fleet_run_is_byte_identical_to_single_process() {
    let dir = scratch("sharded");
    let spec = dir.join("fleet.json");
    fs::write(
        &spec,
        r#"{
  "kind": "fleet",
  "hardware": { "accelerator": { "id": "J", "pes": 8192 } },
  "fleet": {
    "name": "arcade",
    "groups": [
      {
        "name": "vr",
        "replicas": 3,
        "session": {
          "name": "party",
          "uniform": { "scenario": "VR Gaming", "users": 2, "stagger_s": 0.002 }
        }
      },
      {
        "name": "churny",
        "replicas": 2,
        "session": {
          "name": "social",
          "uniform": { "scenario": "Social Interaction A", "users": 2, "stagger_s": 0.003 }
        },
        "faults": {
          "failure_rate_per_s": 2.0,
          "mean_downtime_s": 0.05,
          "preemption_rate_per_s": 4.0,
          "mean_preemption_s": 0.02
        }
      }
    ]
  }
}"#,
    )
    .unwrap();
    let spec = spec.to_str().unwrap();
    let reference = xrbench(&["run-fleet", spec]);
    assert!(
        reference.status.success(),
        "{}",
        String::from_utf8_lossy(&reference.stderr)
    );
    // Multi-process coordinator: same bytes on stdout, for any shard
    // count and concurrency bound.
    for shards in ["2", "3", "5"] {
        let sharded = xrbench(&["run-fleet", spec, "--shards", shards, "--max-procs", "2"]);
        assert!(
            sharded.status.success(),
            "--shards {shards}: {}",
            String::from_utf8_lossy(&sharded.stderr)
        );
        assert_eq!(
            sharded.stdout, reference.stdout,
            "--shards {shards} diverged from the single-process report"
        );
        let stderr = String::from_utf8_lossy(&sharded.stderr).to_string();
        assert!(stderr.contains("sharding across"), "{stderr}");
    }
    // Child mode emits a shard state, not a report.
    let child = xrbench(&["run-fleet", spec, "--shard", "0/3"]);
    assert!(
        child.status.success(),
        "{}",
        String::from_utf8_lossy(&child.stderr)
    );
    let state = String::from_utf8(child.stdout).expect("utf-8 state");
    assert!(state.contains("\"xrbench_shard_state\""), "{state}");
    assert!(!state.contains("fleet_score"), "child leaked a report");
}

#[test]
fn sweep_resume_and_shards_are_byte_identical_to_the_straight_run() {
    let dir = scratch("sweep");
    let spec = "specs/sweep_default.json";

    let reference = xrbench(&["sweep", spec]);
    assert!(
        reference.status.success(),
        "{}",
        String::from_utf8_lossy(&reference.stderr)
    );
    let notes = String::from_utf8_lossy(&reference.stderr).to_string();
    // The committed default sweep dedupes its collapsed recovery axis
    // through the memo cache: the hit rate must be nonzero.
    assert!(notes.contains("cache hits"), "{notes}");
    assert!(!notes.contains(" 0 cache hits"), "{notes}");

    // Kill-and-resume: a --limit run leaves a checkpoint and no
    // report; rerunning against the checkpoint resumes and emits the
    // same bytes as the straight run.
    let ck = dir.join("checkpoint.json");
    let partial = xrbench(&[
        "sweep",
        spec,
        "--checkpoint",
        ck.to_str().unwrap(),
        "--limit",
        "7",
    ]);
    assert!(
        partial.status.success(),
        "{}",
        String::from_utf8_lossy(&partial.stderr)
    );
    assert!(partial.stdout.is_empty(), "--limit must not emit a report");
    assert!(ck.exists(), "--checkpoint must leave the progress file");
    let resumed = xrbench(&["sweep", spec, "--checkpoint", ck.to_str().unwrap()]);
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let resumed_notes = String::from_utf8_lossy(&resumed.stderr).to_string();
    assert!(resumed_notes.contains("resumed 7"), "{resumed_notes}");
    assert_eq!(
        resumed.stdout, reference.stdout,
        "resumed sweep diverged from the straight run"
    );

    // Multi-process coordinator: same bytes for any shard count.
    for shards in ["2", "4"] {
        let sharded = xrbench(&["sweep", spec, "--shards", shards, "--max-procs", "2"]);
        assert!(
            sharded.status.success(),
            "--shards {shards}: {}",
            String::from_utf8_lossy(&sharded.stderr)
        );
        assert_eq!(
            sharded.stdout, reference.stdout,
            "--shards {shards} diverged from the single-process sweep"
        );
    }

    // Child mode emits a shard state, not a report.
    let child = xrbench(&["sweep", spec, "--shard", "0/4"]);
    assert!(
        child.status.success(),
        "{}",
        String::from_utf8_lossy(&child.stderr)
    );
    let state = String::from_utf8(child.stdout).expect("utf-8 state");
    assert!(state.contains("\"xrbench_sweep_state\""), "{state}");
    assert!(!state.contains("pareto"), "child leaked a report");
}

#[test]
fn kind_mismatch_and_bad_specs_fail_cleanly() {
    // Suite subcommand on a session document: exit 1, points at the
    // right subcommand.
    let out = xrbench(&["run-suite", "specs/session_default.json"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("run-session"), "{stderr}");

    // A sweep document under run-suite points at `xrbench sweep`
    // (the one subcommand without the `run-` prefix), and vice versa.
    let out = xrbench(&["run-suite", "specs/sweep_default.json"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("use `xrbench sweep`"), "{stderr}");
    let out = xrbench(&["sweep", "specs/suite_default.json"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("use `xrbench run-suite`"), "{stderr}");

    // Unknown subcommands enumerate the real ones (exit 2).
    let out = xrbench(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(
        stderr.contains("unknown subcommand `frobnicate`"),
        "{stderr}"
    );
    for sub in ["run-suite", "run-session", "run-fleet", "sweep", "analyze"] {
        assert!(stderr.contains(sub), "missing `{sub}` in: {stderr}");
    }

    // Malformed JSON: exit 1 with the parser's diagnostic.
    let dir = scratch("badspec");
    let bad = dir.join("bad.json");
    fs::write(&bad, "{ not json").unwrap();
    let out = xrbench(&["run-suite", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("invalid JSON"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A semantically invalid spec: the builder's diagnostic reaches
    // stderr, with no panic.
    let invalid = dir.join("invalid.json");
    fs::write(
        &invalid,
        r#"{ "kind": "suite",
             "hardware": { "uniform": { "engines": 1, "latency_s": 0.001, "energy_j": 0.0 } },
             "scenarios": [ { "name": "x", "models": [
                 { "model": "KD", "target_fps": 10.0 } ] } ] }"#,
    )
    .unwrap();
    let out = xrbench(&["run-suite", invalid.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("exceeds its sensor's"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    // Usage errors exit 2.
    let out = xrbench(&["run-suite"]);
    assert_eq!(out.status.code(), Some(2));
    let out = xrbench(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn gen_scenarios_writes_loadable_deterministic_files() {
    let dir = scratch("gen");
    let out = xrbench(&[
        "gen-scenarios",
        "--seed",
        "42",
        "--count",
        "5",
        "--out-dir",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let files = relative_files(&dir);
    assert_eq!(files.len(), 5);
    for (name, body) in &files {
        let spec = xrbench_workload::scenario_from_str(body)
            .unwrap_or_else(|e| panic!("{}: {e}", name.display()));
        assert!(spec.name.starts_with("Sampled #"), "{}", spec.name);
    }
    // Same seed → same files.
    let dir2 = scratch("gen2");
    let out = xrbench(&[
        "gen-scenarios",
        "--seed",
        "42",
        "--count",
        "5",
        "--out-dir",
        dir2.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    assert_eq!(files, relative_files(&dir2));
}

#[test]
fn analyze_exit_codes_track_static_feasibility() {
    // The acceptance bar: the committed default suite is analyzer-clean.
    let out = xrbench(&["analyze", "specs/suite_default.json"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("0 error(s)"), "{text}");

    // A bare scenario spec analyzes against the default J@8192 system.
    let out = xrbench(&["analyze", "specs/scenarios/vr_gaming.json"]);
    assert_eq!(out.status.code(), Some(0));

    // Each hand-crafted infeasible fixture exits 1, and its JSON form
    // is byte-identical to the committed golden diagnostic file.
    for name in [
        "infeasible_unsustainable",
        "infeasible_cascade",
        "infeasible_overload",
        "infeasible_faulted",
    ] {
        let spec = format!("tests/fixtures/analyze/{name}.spec.json");
        let out = xrbench(&["analyze", &spec, "--json"]);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{name} must analyze with errors:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
        let golden = repo_root()
            .join("tests")
            .join("fixtures")
            .join("analyze")
            .join(format!("{name}.diag.json"));
        let expected = fs::read_to_string(&golden)
            .unwrap_or_else(|e| panic!("missing {} ({e}); bless via analysis_golden", name));
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            expected,
            "{name}: `analyze --json` diverged from the golden fixture \
             (re-bless with XRBENCH_BLESS=1 cargo test --test analysis_golden)"
        );
    }
}

#[test]
fn strict_runs_refuse_infeasible_specs_and_plain_runs_hint() {
    let spec = "tests/fixtures/analyze/infeasible_cascade.spec.json";

    // --strict: refuse before simulating, exit 1, name the errors.
    let out = xrbench(&["run-suite", spec, "--strict"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("statically-infeasible"), "{stderr}");
    assert!(stderr.contains("XA002"), "{stderr}");
    assert!(out.stdout.is_empty(), "--strict must not emit a report");

    // Without --strict: the run proceeds, but one-line analyzer hints
    // land on stderr before the report.
    let out = xrbench(&["run-suite", spec]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("analyze: "), "{stderr}");
    assert!(stderr.contains("XA002"), "{stderr}");
    assert!(stderr.contains("--strict"), "{stderr}");
    assert!(!out.stdout.is_empty(), "the report must still be produced");

    // A clean spec stays hint-free.
    let out = xrbench(&["run-session", "specs/session_default.json", "--strict"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("analyze: "),
        "clean specs must not produce analyzer hints"
    );
}

#[test]
fn feasible_gen_scenarios_filters_against_the_default_system() {
    let dir = scratch("gen-feasible");
    // A tiny accelerator (A at 512 PEs) makes several default-space
    // draws infeasible, so --feasible actually has to resample.
    let out = xrbench(&[
        "gen-scenarios",
        "--seed",
        "7",
        "--count",
        "6",
        "--feasible",
        "--accelerator",
        "A",
        "--pes",
        "512",
        "--out-dir",
        dir.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let files = relative_files(&dir);
    assert_eq!(files.len(), 6);
    let system =
        xrbench_accel::AcceleratorSystem::new(xrbench_accel::config_by_id('A').unwrap(), 512);
    for (name, body) in &files {
        let spec = xrbench_workload::scenario_from_str(body)
            .unwrap_or_else(|e| panic!("{}: {e}", name.display()));
        let analysis = xrbench_analysis::analyze_scenario(&spec, &system);
        assert!(
            !analysis.has_errors(),
            "{}: --feasible emitted an infeasible spec:\n{}",
            name.display(),
            analysis.to_text()
        );
    }
}

#[test]
fn exported_scenarios_reload_into_the_builtin_catalog() {
    let scenarios_dir = repo_root().join("specs").join("scenarios");
    let mut loaded = 0;
    for (name, body) in relative_files(&scenarios_dir) {
        let spec = xrbench_workload::scenario_from_str(&body)
            .unwrap_or_else(|e| panic!("{}: {e}", name.display()));
        let builtin = xrbench_workload::ScenarioCatalog::builtin();
        assert_eq!(
            builtin.get(&spec.name),
            Some(&spec),
            "{}: committed spec drifted from the builtin scenario",
            name.display()
        );
        loaded += 1;
    }
    assert_eq!(loaded, 7, "expected the seven Table 2 scenario files");
}
