//! Input source specifications (Table 3).

use xrbench_models::InputSource;

/// The streaming parameters of one input source
/// (`σ = (inSrcID, FPS_sensor, Linit, Jt)`, Definition 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceSpec {
    /// The sensor.
    pub source: InputSource,
    /// Streaming rate in frames per second (`FPS_sensor`).
    pub fps: f64,
    /// Maximum absolute per-frame jitter in milliseconds (`Jt`).
    pub jitter_ms: f64,
    /// Initialization latency of the stream in milliseconds (`Linit`).
    pub init_latency_ms: f64,
}

impl SourceSpec {
    /// The frame period in seconds.
    pub fn period_s(&self) -> f64 {
        1.0 / self.fps
    }
}

/// Returns the Table 3 specification for a sensor.
///
/// All image/depth streams run at 60 FPS so that multi-modal models
/// (e.g. depth refinement) see aligned inputs; audio arrives in 320 ms
/// chunks (3 FPS). Initialization latencies model sensor pipeline
/// warm-up and are the "different initial delays" of Figure 3.
pub fn source_spec(source: InputSource) -> SourceSpec {
    match source {
        InputSource::Camera => SourceSpec {
            source,
            fps: 60.0,
            jitter_ms: 0.05,
            init_latency_ms: 1.0,
        },
        InputSource::Lidar => SourceSpec {
            source,
            fps: 60.0,
            jitter_ms: 0.05,
            init_latency_ms: 1.0,
        },
        InputSource::Microphone => SourceSpec {
            source,
            fps: 3.0,
            jitter_ms: 0.1,
            init_latency_ms: 2.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_rates() {
        assert_eq!(source_spec(InputSource::Camera).fps, 60.0);
        assert_eq!(source_spec(InputSource::Lidar).fps, 60.0);
        assert_eq!(source_spec(InputSource::Microphone).fps, 3.0);
    }

    #[test]
    fn table3_jitters() {
        assert_eq!(source_spec(InputSource::Camera).jitter_ms, 0.05);
        assert_eq!(source_spec(InputSource::Lidar).jitter_ms, 0.05);
        assert_eq!(source_spec(InputSource::Microphone).jitter_ms, 0.1);
    }

    #[test]
    fn periods_are_inverse_rates() {
        let cam = source_spec(InputSource::Camera);
        assert!((cam.period_s() - 1.0 / 60.0).abs() < 1e-12);
        let mic = source_spec(InputSource::Microphone);
        assert!((mic.period_s() - 1.0 / 3.0).abs() < 1e-12);
    }
}
