//! Runtime registry of usage scenarios.
//!
//! The benchmark suite `Ω` (Definition 5) is no longer a closed enum:
//! a [`ScenarioCatalog`] is an ordered, name-keyed collection of
//! [`ScenarioSpec`]s. [`ScenarioCatalog::builtin`] registers the seven
//! Table 2 scenarios (in Table 2 order, so suite scores are unchanged),
//! and user-defined scenarios registered alongside them flow through
//! `run_suite` and friends identically.

use std::fmt;

use crate::scenario::{ScenarioSpec, UsageScenario};

/// Why a scenario could not be registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A scenario with the same name is already registered.
    DuplicateName(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::DuplicateName(name) => {
                write!(f, "scenario {name:?} is already registered")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// An ordered registry of usage scenarios: the suite `Ω` as data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioCatalog {
    entries: Vec<ScenarioSpec>,
}

impl ScenarioCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// The seven paper scenarios, in Table 2 order.
    pub fn builtin() -> Self {
        let mut c = Self::new();
        for s in UsageScenario::ALL {
            c.register(s.spec()).expect("builtin names are unique");
        }
        c
    }

    /// Registers a scenario at the end of the catalog.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::DuplicateName`] if a scenario with the
    /// same name is already present.
    pub fn register(&mut self, spec: ScenarioSpec) -> Result<(), CatalogError> {
        if self.contains(&spec.name) {
            return Err(CatalogError::DuplicateName(spec.name));
        }
        self.entries.push(spec);
        Ok(())
    }

    /// Looks up a scenario by name.
    pub fn get(&self, name: &str) -> Option<&ScenarioSpec> {
        self.entries.iter().find(|s| s.name == name)
    }

    /// Whether a scenario with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// The registered scenarios, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &ScenarioSpec> {
        self.entries.iter()
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|s| s.name.as_str()).collect()
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<'a> IntoIterator for &'a ScenarioCatalog {
    type Item = &'a ScenarioSpec;
    type IntoIter = std::slice::Iter<'a, ScenarioSpec>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScenarioBuilder;
    use xrbench_models::ModelId::*;

    #[test]
    fn builtin_matches_table2_order() {
        let c = ScenarioCatalog::builtin();
        assert_eq!(c.len(), 7);
        let expected: Vec<&str> = UsageScenario::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(c.names(), expected);
        for s in UsageScenario::ALL {
            assert_eq!(c.get(s.name()), Some(&s.spec()));
        }
    }

    #[test]
    fn registers_user_scenarios_after_builtins() {
        let mut c = ScenarioCatalog::builtin();
        let custom = ScenarioBuilder::new("Fitness Coach")
            .model(HandTracking, 30.0)
            .model(DepthEstimation, 30.0)
            .build()
            .unwrap();
        c.register(custom.clone()).unwrap();
        assert_eq!(c.len(), 8);
        assert_eq!(c.names().last(), Some(&"Fitness Coach"));
        assert_eq!(c.get("Fitness Coach"), Some(&custom));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = ScenarioCatalog::builtin();
        let err = c.register(UsageScenario::VrGaming.spec()).unwrap_err();
        assert_eq!(err, CatalogError::DuplicateName("VR Gaming".into()));
        assert!(err.to_string().contains("VR Gaming"));
        assert_eq!(c.len(), 7, "failed registration must not mutate");
    }

    #[test]
    fn empty_catalog_behaves() {
        let c = ScenarioCatalog::new();
        assert!(c.is_empty());
        assert!(c.get("anything").is_none());
        assert_eq!(c.iter().count(), 0);
    }
}
