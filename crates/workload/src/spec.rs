//! Declarative workload specs: the JSON wire format for scenarios and
//! sessions.
//!
//! A scenario or session can be defined in a plain JSON file and loaded
//! with [`scenario_from_str`] / [`session_from_str`] — the text-file
//! face of the scenario composition engine. The **single-validation-path
//! invariant** is load-bearing: the loader never constructs a
//! [`ScenarioSpec`] directly. Every decoded scenario is replayed
//! through [`ScenarioBuilder`], so a spec file with a dependency cycle,
//! an unknown upstream, an out-of-range rate, or a bad trigger
//! probability fails with *exactly* the diagnostic the builder gives
//! code — and a spec file that loads is valid by the same definition a
//! programmatic scenario is.
//!
//! ## Scenario schema
//!
//! ```json
//! {
//!   "name": "AR Co-pilot",
//!   "description": "Hands + voice assistant",
//!   "models": [
//!     { "model": "HT", "target_fps": 30.0 },
//!     { "model": "KD", "target_fps": 3.0 },
//!     { "model": "SR", "target_fps": 3.0,
//!       "deps": [ { "upstream": "KD", "kind": "control",
//!                   "trigger_probability": 0.8 } ] }
//!   ]
//! }
//! ```
//!
//! Models are named by their Table 1 abbreviation (`"HT"`) or full task
//! name (`"Hand Tracking"`), case-insensitively. Dependency `kind` is
//! `"data"` or `"control"`; `trigger_probability` defaults to `1.0`.
//!
//! ## Session schema
//!
//! ```json
//! {
//!   "name": "vr-party",
//!   "scenarios": [ /* optional local scenario definitions */ ],
//!   "users": [
//!     { "scenario": "VR Gaming", "start_offset_s": 0.0 },
//!     { "scenario": "AR Gaming", "start_offset_s": 0.05 }
//!   ]
//! }
//! ```
//!
//! Instead of an explicit `users` array, a session may use the
//! `"uniform"` shorthand (`{"scenario", "users", "stagger_s"}`) or
//! `"mixed"` (`{"scenarios": [..], "users", "stagger_s"}`) — the same
//! constructors [`SessionSpec::uniform`] / [`SessionSpec::mixed`]
//! expose in code. Scenario names resolve against a caller-provided
//! [`ScenarioCatalog`] (typically the built-ins) extended by the file's
//! local `scenarios` definitions.

use std::fmt;

use serde::de::{Cursor, DeError};
use serde::json::JsonValue;
use serde::Serialize;

use xrbench_models::ModelId;

use crate::builder::{ScenarioBuildError, ScenarioBuilder};
use crate::catalog::{CatalogError, ScenarioCatalog};
use crate::scenario::{DependencyKind, ScenarioSpec};
use crate::session::SessionSpec;

/// Why a spec file failed to load.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document is not syntactically valid JSON.
    Json(String),
    /// The document parsed but has the wrong shape (message carries
    /// the JSON path).
    Decode(DeError),
    /// The decoded scenario failed [`ScenarioBuilder`] validation —
    /// the same diagnostics a programmatic scenario gets.
    Build(ScenarioBuildError),
    /// A model name that is neither a Table 1 abbreviation nor a full
    /// task name.
    UnknownModel {
        /// JSON path of the offending name.
        path: String,
        /// The unrecognized name.
        name: String,
    },
    /// A scenario reference that resolves in neither the catalog nor
    /// the file's local definitions.
    UnknownScenario {
        /// JSON path of the offending reference.
        path: String,
        /// The unresolved scenario name.
        name: String,
        /// The names that were available.
        available: Vec<String>,
    },
    /// A local scenario definition collides with a registered name.
    Catalog(CatalogError),
    /// A structurally valid value that is semantically out of range
    /// (e.g. a negative start offset).
    Invalid {
        /// JSON path of the offending value.
        path: String,
        /// What constraint it violates.
        message: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "invalid JSON: {e}"),
            SpecError::Decode(e) => write!(f, "invalid spec: {e}"),
            SpecError::Build(e) => write!(f, "invalid scenario: {e}"),
            SpecError::UnknownModel { path, name } => {
                write!(f, "invalid spec: {path}: unknown model `{name}` (expected a Table 1 abbreviation like \"HT\" or a task name like \"Hand Tracking\")")
            }
            SpecError::UnknownScenario {
                path,
                name,
                available,
            } => write!(
                f,
                "invalid spec: {path}: unknown scenario `{name}` (available: {})",
                available.join(", ")
            ),
            SpecError::Catalog(e) => write!(f, "invalid spec: {e}"),
            SpecError::Invalid { path, message } => write!(f, "invalid spec: {path}: {message}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<DeError> for SpecError {
    fn from(e: DeError) -> Self {
        SpecError::Decode(e)
    }
}

impl From<ScenarioBuildError> for SpecError {
    fn from(e: ScenarioBuildError) -> Self {
        SpecError::Build(e)
    }
}

impl From<CatalogError> for SpecError {
    fn from(e: CatalogError) -> Self {
        SpecError::Catalog(e)
    }
}

/// Parses a JSON document into a value tree.
///
/// # Errors
///
/// Returns [`SpecError::Json`] on malformed JSON.
pub fn parse_json(text: &str) -> Result<JsonValue, SpecError> {
    serde_json::from_str(text).map_err(|e| SpecError::Json(e.to_string()))
}

/// Resolves a model name: Table 1 abbreviation or full task name,
/// case-insensitive.
///
/// # Errors
///
/// Returns [`SpecError::UnknownModel`] (with the JSON path) for names
/// that match neither form.
pub fn model_from_value(cursor: &Cursor<'_>) -> Result<ModelId, SpecError> {
    let name = cursor.as_str()?;
    name.parse::<ModelId>()
        .ok()
        .or_else(|| {
            ModelId::ALL
                .iter()
                .find(|m| m.task_name().eq_ignore_ascii_case(name))
                .copied()
        })
        .ok_or_else(|| SpecError::UnknownModel {
            path: cursor.path().to_string(),
            name: name.to_string(),
        })
}

/// Decodes a dependency kind: `"data"` or `"control"`,
/// case-insensitive.
fn kind_by_name(cursor: &Cursor<'_>) -> Result<DependencyKind, SpecError> {
    let name = cursor.as_str()?;
    if name.eq_ignore_ascii_case("data") {
        Ok(DependencyKind::Data)
    } else if name.eq_ignore_ascii_case("control") {
        Ok(DependencyKind::Control)
    } else {
        Err(SpecError::Invalid {
            path: cursor.path().to_string(),
            message: format!("unknown dependency kind `{name}` (expected \"data\" or \"control\")"),
        })
    }
}

/// Decodes a scenario from a parsed JSON value, funneling the result
/// through [`ScenarioBuilder`] for validation.
///
/// # Errors
///
/// Returns a [`SpecError`] describing the first problem: wrong shape,
/// unknown model name, or any [`ScenarioBuildError`] the builder
/// raises.
pub fn scenario_from_value(cursor: &Cursor<'_>) -> Result<ScenarioSpec, SpecError> {
    cursor.deny_unknown_fields(&["name", "description", "models"])?;
    let name: String = cursor.get_field("name")?;
    let description: Option<String> = cursor.get_opt_field("description")?;
    let mut builder = ScenarioBuilder::new(name).describe(description.unwrap_or_default());
    for entry in cursor.field("models")?.items()? {
        entry.deny_unknown_fields(&["model", "target_fps", "deps"])?;
        let model = model_from_value(&entry.field("model")?)?;
        let target_fps: f64 = entry.get_field("target_fps")?;
        builder = builder.model(model, target_fps);
        if let Some(deps) = entry.opt_field("deps")? {
            for dep in deps.items()? {
                dep.deny_unknown_fields(&["upstream", "kind", "trigger_probability"])?;
                let upstream = model_from_value(&dep.field("upstream")?)?;
                let kind = kind_by_name(&dep.field("kind")?)?;
                let probability: f64 = dep.get_opt_field("trigger_probability")?.unwrap_or(1.0);
                builder = builder.dependency(model, upstream, kind, probability);
            }
        }
    }
    // The single validation path: every diagnostic (cycles, unknown
    // upstreams, rates, probabilities) comes from the builder.
    Ok(builder.build()?)
}

/// Loads a scenario from JSON text.
///
/// # Errors
///
/// See [`scenario_from_value`]; malformed JSON yields
/// [`SpecError::Json`].
pub fn scenario_from_str(text: &str) -> Result<ScenarioSpec, SpecError> {
    let value = parse_json(text)?;
    scenario_from_value(&Cursor::root(&value))
}

/// The serializable wire form of one scenario-model dependency.
#[derive(Serialize)]
struct DepEntry {
    upstream: String,
    kind: String,
    trigger_probability: f64,
}

/// The serializable wire form of one scenario model.
#[derive(Serialize)]
struct ModelEntry {
    model: String,
    target_fps: f64,
    deps: Vec<DepEntry>,
}

/// The serializable wire form of a scenario.
#[derive(Serialize)]
struct ScenarioFile {
    name: String,
    description: String,
    models: Vec<ModelEntry>,
}

fn scenario_file(spec: &ScenarioSpec) -> ScenarioFile {
    ScenarioFile {
        name: spec.name.clone(),
        description: spec.description.clone(),
        models: spec
            .models
            .iter()
            .map(|m| ModelEntry {
                model: m.model.abbrev().to_string(),
                target_fps: m.target_fps,
                deps: m
                    .deps
                    .iter()
                    .map(|d| DepEntry {
                        upstream: d.upstream.abbrev().to_string(),
                        kind: match d.kind {
                            DependencyKind::Data => "data".to_string(),
                            DependencyKind::Control => "control".to_string(),
                        },
                        trigger_probability: d.trigger_probability,
                    })
                    .collect(),
            })
            .collect(),
    }
}

/// Serializes a scenario as a pretty-printed spec file (the format
/// [`scenario_from_str`] loads).
pub fn scenario_to_json(spec: &ScenarioSpec) -> String {
    serde_json::to_string_pretty(&scenario_file(spec)).expect("spec serialization cannot fail")
}

/// The serializable wire value of a scenario, for embedding into
/// larger documents (sessions, fleets, run specs).
pub fn scenario_to_value(spec: &ScenarioSpec) -> JsonValue {
    scenario_file(spec).to_json_value()
}

/// Registers a session/fleet file's local `scenarios` definitions on
/// top of `catalog`, returning the extended catalog.
///
/// # Errors
///
/// Propagates decode/build errors from the local definitions and
/// [`CatalogError::DuplicateName`] collisions.
pub fn extend_catalog(
    cursor: &Cursor<'_>,
    catalog: &ScenarioCatalog,
) -> Result<ScenarioCatalog, SpecError> {
    let mut extended = catalog.clone();
    if let Some(defs) = cursor.opt_field("scenarios")? {
        for def in defs.items()? {
            extended.register(scenario_from_value(&def)?)?;
        }
    }
    Ok(extended)
}

/// Resolves a scenario reference by name against a catalog.
fn resolve_scenario(
    cursor: &Cursor<'_>,
    catalog: &ScenarioCatalog,
) -> Result<ScenarioSpec, SpecError> {
    let name = cursor.as_str()?;
    catalog
        .get(name)
        .cloned()
        .ok_or_else(|| SpecError::UnknownScenario {
            path: cursor.path().to_string(),
            name: name.to_string(),
            available: catalog.names().iter().map(|s| s.to_string()).collect(),
        })
}

/// Decodes a finite, non-negative duration-like number.
fn non_negative(cursor: &Cursor<'_>, what: &str) -> Result<f64, SpecError> {
    let v: f64 = cursor.get()?;
    if v.is_finite() && v >= 0.0 {
        Ok(v)
    } else {
        Err(SpecError::Invalid {
            path: cursor.path().to_string(),
            message: format!("{what} must be finite and non-negative, got {v}"),
        })
    }
}

/// Decodes a strictly positive integer.
fn positive_u32(cursor: &Cursor<'_>, what: &str) -> Result<u32, SpecError> {
    let v: u32 = cursor.get()?;
    if v > 0 {
        Ok(v)
    } else {
        Err(SpecError::Invalid {
            path: cursor.path().to_string(),
            message: format!("{what} must be at least 1"),
        })
    }
}

/// Decodes a session from a parsed JSON value. Scenario references
/// resolve against `catalog` extended by the document's local
/// `scenarios` definitions.
///
/// # Errors
///
/// Returns a [`SpecError`] for shape problems, unresolved scenario
/// names, out-of-range offsets/counts, or any error from embedded
/// scenario definitions.
pub fn session_from_value(
    cursor: &Cursor<'_>,
    catalog: &ScenarioCatalog,
) -> Result<SessionSpec, SpecError> {
    cursor.deny_unknown_fields(&["name", "scenarios", "users", "uniform", "mixed"])?;
    let name: String = cursor.get_field("name")?;
    let catalog = extend_catalog(cursor, catalog)?;

    let users = cursor.opt_field("users")?;
    let uniform = cursor.opt_field("uniform")?;
    let mixed = cursor.opt_field("mixed")?;
    let given = [users.is_some(), uniform.is_some(), mixed.is_some()]
        .iter()
        .filter(|p| **p)
        .count();
    if given != 1 {
        return Err(SpecError::Invalid {
            path: cursor.path().to_string(),
            message: "exactly one of `users`, `uniform`, or `mixed` is required".to_string(),
        });
    }

    if let Some(users) = users {
        let entries = users.items()?;
        if entries.is_empty() {
            return Err(SpecError::Invalid {
                path: users.path().to_string(),
                message: "session needs at least one user".to_string(),
            });
        }
        let mut session = SessionSpec::new(name);
        for entry in entries {
            entry.deny_unknown_fields(&["scenario", "start_offset_s"])?;
            let spec = resolve_scenario(&entry.field("scenario")?, &catalog)?;
            let offset = match entry.opt_field("start_offset_s")? {
                Some(c) => non_negative(&c, "start offset")?,
                None => 0.0,
            };
            session = session.with_user(spec, offset);
        }
        return Ok(session);
    }

    if let Some(uniform) = uniform {
        uniform.deny_unknown_fields(&["scenario", "users", "stagger_s"])?;
        let spec = resolve_scenario(&uniform.field("scenario")?, &catalog)?;
        let count = positive_u32(&uniform.field("users")?, "users")?;
        let stagger = match uniform.opt_field("stagger_s")? {
            Some(c) => non_negative(&c, "stagger")?,
            None => 0.0,
        };
        return Ok(SessionSpec::uniform(name, spec, count, stagger));
    }

    let mixed = mixed.expect("one of the three forms is present");
    mixed.deny_unknown_fields(&["scenarios", "users", "stagger_s"])?;
    let refs = mixed.field("scenarios")?.items()?;
    if refs.is_empty() {
        return Err(SpecError::Invalid {
            path: mixed.path().to_string(),
            message: "session needs at least one scenario".to_string(),
        });
    }
    let specs = refs
        .iter()
        .map(|r| resolve_scenario(r, &catalog))
        .collect::<Result<Vec<_>, _>>()?;
    let count = positive_u32(&mixed.field("users")?, "users")?;
    let stagger = match mixed.opt_field("stagger_s")? {
        Some(c) => non_negative(&c, "stagger")?,
        None => 0.0,
    };
    Ok(SessionSpec::mixed(name, &specs, count, stagger))
}

/// Loads a session from JSON text (see [`session_from_value`]).
///
/// # Errors
///
/// See [`session_from_value`]; malformed JSON yields
/// [`SpecError::Json`].
pub fn session_from_str(text: &str, catalog: &ScenarioCatalog) -> Result<SessionSpec, SpecError> {
    let value = parse_json(text)?;
    session_from_value(&Cursor::root(&value), catalog)
}

/// The serializable wire value of a session: local definitions for
/// every scenario that is not a byte-identical builtin, plus an
/// explicit per-user list. Loading the result with
/// [`session_from_value`] against the builtin catalog reproduces the
/// session exactly.
///
/// # Panics
///
/// The wire format references scenarios *by name*, so a session is
/// exportable only if names identify content. Panics if two users run
/// different scenarios under the same name, or a non-builtin scenario
/// shadows a builtin name (the export would reload as a different
/// session, or not reload at all).
pub fn session_to_value(session: &SessionSpec) -> JsonValue {
    let builtin = ScenarioCatalog::builtin();
    let mut local: Vec<&ScenarioSpec> = Vec::new();
    for u in &session.users {
        if builtin.get(&u.spec.name) == Some(&u.spec) {
            continue;
        }
        assert!(
            !builtin.contains(&u.spec.name),
            "scenario {:?} shadows a builtin name with different content; \
             rename it to make the session exportable",
            u.spec.name
        );
        match local.iter().find(|s| s.name == u.spec.name) {
            Some(existing) => assert!(
                *existing == &u.spec,
                "two different scenarios share the name {:?}; \
                 rename one to make the session exportable",
                u.spec.name
            ),
            None => local.push(&u.spec),
        }
    }
    let mut obj: Vec<(String, JsonValue)> =
        vec![("name".to_string(), JsonValue::Str(session.name.clone()))];
    if !local.is_empty() {
        obj.push((
            "scenarios".to_string(),
            JsonValue::Array(local.iter().map(|s| scenario_to_value(s)).collect()),
        ));
    }
    obj.push((
        "users".to_string(),
        JsonValue::Array(
            session
                .users
                .iter()
                .map(|u| {
                    JsonValue::Object(vec![
                        ("scenario".to_string(), JsonValue::Str(u.spec.name.clone())),
                        (
                            "start_offset_s".to_string(),
                            JsonValue::Num(u.start_offset_s),
                        ),
                    ])
                })
                .collect(),
        ),
    ));
    JsonValue::Object(obj)
}

/// Serializes a session as a pretty-printed spec file (the format
/// [`session_from_str`] loads).
pub fn session_to_json(session: &SessionSpec) -> String {
    serde_json::to_string_pretty(&session_to_value(session))
        .expect("spec serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::UsageScenario;
    use xrbench_models::ModelId::*;

    #[test]
    fn builtin_scenarios_round_trip_byte_identically() {
        for s in UsageScenario::ALL {
            let spec = s.spec();
            let json = scenario_to_json(&spec);
            let reloaded = scenario_from_str(&json).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(reloaded, spec, "{s}");
            // Serialization is stable across a round trip.
            assert_eq!(scenario_to_json(&reloaded), json, "{s}");
        }
    }

    #[test]
    fn loads_a_scenario_with_full_task_names_and_default_probability() {
        let spec = scenario_from_str(
            r#"{
                "name": "Co-pilot",
                "models": [
                    { "model": "hand tracking", "target_fps": 30.0 },
                    { "model": "ES", "target_fps": 60.0 },
                    { "model": "GE", "target_fps": 60.0,
                      "deps": [ { "upstream": "Eye Segmentation", "kind": "DATA" } ] }
                ]
            }"#,
        )
        .unwrap();
        assert_eq!(spec.name, "Co-pilot");
        assert_eq!(spec.description, "");
        let ge = spec.model(GazeEstimation).unwrap();
        assert_eq!(ge.deps[0].upstream, EyeSegmentation);
        assert_eq!(ge.deps[0].kind, DependencyKind::Data);
        assert_eq!(ge.deps[0].trigger_probability, 1.0);
    }

    #[test]
    fn malformed_json_is_a_json_error() {
        let err = scenario_from_str("{ not json").unwrap_err();
        assert!(matches!(err, SpecError::Json(_)), "{err}");
        assert!(err.to_string().contains("invalid JSON"), "{err}");
    }

    #[test]
    fn unknown_model_names_are_rejected_with_path() {
        let err = scenario_from_str(
            r#"{ "name": "x", "models": [ { "model": "QQ", "target_fps": 30.0 } ] }"#,
        )
        .unwrap_err();
        match &err {
            SpecError::UnknownModel { path, name } => {
                assert_eq!(name, "QQ");
                assert_eq!(path, "$.models[0].model");
            }
            other => panic!("expected UnknownModel, got {other}"),
        }
    }

    #[test]
    fn builder_diagnostics_surface_verbatim() {
        // Out-of-range rate → the builder's RateExceedsSource message.
        let err = scenario_from_str(
            r#"{ "name": "x", "models": [ { "model": "KD", "target_fps": 10.0 } ] }"#,
        )
        .unwrap_err();
        assert_eq!(
            err,
            SpecError::Build(ScenarioBuildError::RateExceedsSource {
                model: KeywordDetection,
                target_fps: 10.0,
                source_fps: 3.0,
            })
        );

        // Cycle → the builder's DependencyCycle message.
        let err = scenario_from_str(
            r#"{ "name": "x", "models": [
                { "model": "ES", "target_fps": 60.0,
                  "deps": [ { "upstream": "GE", "kind": "data" } ] },
                { "model": "GE", "target_fps": 60.0,
                  "deps": [ { "upstream": "ES", "kind": "data" } ] }
            ] }"#,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                SpecError::Build(ScenarioBuildError::DependencyCycle(_))
            ),
            "{err}"
        );
        assert!(err.to_string().contains("->"), "{err}");

        // Bad probability → the builder's InvalidProbability message.
        let err = scenario_from_str(
            r#"{ "name": "x", "models": [
                { "model": "KD", "target_fps": 3.0 },
                { "model": "SR", "target_fps": 3.0,
                  "deps": [ { "upstream": "KD", "kind": "control",
                              "trigger_probability": 1.5 } ] }
            ] }"#,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                SpecError::Build(ScenarioBuildError::InvalidProbability { .. })
            ),
            "{err}"
        );
    }

    #[test]
    fn unknown_fields_and_kinds_are_rejected() {
        let err = scenario_from_str(
            r#"{ "name": "x", "modles": [ ] }"#, // typo'd key
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown field `modles`"), "{err}");

        let err = scenario_from_str(
            r#"{ "name": "x", "models": [
                { "model": "ES", "target_fps": 60.0 },
                { "model": "GE", "target_fps": 60.0,
                  "deps": [ { "upstream": "ES", "kind": "causal" } ] }
            ] }"#,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("unknown dependency kind `causal`"),
            "{err}"
        );
    }

    #[test]
    fn session_explicit_users_resolve_against_catalog() {
        let catalog = ScenarioCatalog::builtin();
        let session = session_from_str(
            r#"{
                "name": "party",
                "users": [
                    { "scenario": "VR Gaming" },
                    { "scenario": "AR Gaming", "start_offset_s": 0.05 }
                ]
            }"#,
            &catalog,
        )
        .unwrap();
        assert_eq!(session.num_users(), 2);
        assert_eq!(session.users[0].spec.name, "VR Gaming");
        assert_eq!(session.users[0].start_offset_s, 0.0);
        assert_eq!(session.users[1].spec.name, "AR Gaming");
        assert_eq!(session.users[1].start_offset_s, 0.05);
    }

    #[test]
    fn session_uniform_and_mixed_match_constructors() {
        let catalog = ScenarioCatalog::builtin();
        let uniform = session_from_str(
            r#"{ "name": "u", "uniform":
                 { "scenario": "VR Gaming", "users": 4, "stagger_s": 0.05 } }"#,
            &catalog,
        )
        .unwrap();
        assert_eq!(
            uniform,
            SessionSpec::uniform("u", UsageScenario::VrGaming.spec(), 4, 0.05)
        );

        let mixed = session_from_str(
            r#"{ "name": "m", "mixed":
                 { "scenarios": ["VR Gaming", "AR Gaming"], "users": 5, "stagger_s": 0.01 } }"#,
            &catalog,
        )
        .unwrap();
        let expected = SessionSpec::mixed(
            "m",
            &[
                UsageScenario::VrGaming.spec(),
                UsageScenario::ArGaming.spec(),
            ],
            5,
            0.01,
        );
        assert_eq!(mixed, expected);
    }

    #[test]
    fn session_local_scenarios_extend_the_catalog() {
        let session = session_from_str(
            r#"{
                "name": "s",
                "scenarios": [
                    { "name": "Fitness", "models": [
                        { "model": "HT", "target_fps": 30.0 } ] }
                ],
                "uniform": { "scenario": "Fitness", "users": 2 }
            }"#,
            &ScenarioCatalog::builtin(),
        )
        .unwrap();
        assert_eq!(session.users[0].spec.name, "Fitness");
    }

    #[test]
    fn session_rejections_never_panic() {
        let catalog = ScenarioCatalog::builtin();
        for (text, needle) in [
            (r#"{ "name": "s" }"#, "exactly one of"),
            (
                r#"{ "name": "s", "users": [], "uniform": {} }"#,
                "exactly one of",
            ),
            (r#"{ "name": "s", "users": [] }"#, "at least one user"),
            (
                r#"{ "name": "s", "users": [ { "scenario": "Nope" } ] }"#,
                "unknown scenario `Nope`",
            ),
            (
                r#"{ "name": "s", "users": [
                     { "scenario": "VR Gaming", "start_offset_s": -1.0 } ] }"#,
                "non-negative",
            ),
            (
                r#"{ "name": "s", "uniform":
                     { "scenario": "VR Gaming", "users": 0 } }"#,
                "at least 1",
            ),
            (
                r#"{ "name": "s", "mixed": { "scenarios": [], "users": 2 } }"#,
                "at least one scenario",
            ),
            (
                r#"{ "name": "s", "scenarios": [
                     { "name": "VR Gaming", "models": [
                       { "model": "HT", "target_fps": 30.0 } ] } ],
                     "uniform": { "scenario": "VR Gaming", "users": 1 } }"#,
                "already registered",
            ),
        ] {
            let err = session_from_str(text, &catalog).unwrap_err();
            assert!(err.to_string().contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn sessions_round_trip_byte_identically() {
        let catalog = ScenarioCatalog::builtin();
        // Mixed builtin session.
        let session = SessionSpec::mixed(
            "m",
            &[
                UsageScenario::VrGaming.spec(),
                UsageScenario::ArAssistant.spec(),
            ],
            5,
            0.01,
        );
        let json = session_to_json(&session);
        assert_eq!(session_from_str(&json, &catalog).unwrap(), session);

        // Session with a non-builtin scenario: exported as a local def.
        let custom = ScenarioBuilder::new("Fitness")
            .model(HandTracking, 30.0)
            .build()
            .unwrap();
        let session = SessionSpec::new("c")
            .with_user(custom, 0.0)
            .with_user(UsageScenario::VrGaming.spec(), 0.25);
        let json = session_to_json(&session);
        assert!(json.contains("\"scenarios\""), "{json}");
        assert_eq!(session_from_str(&json, &catalog).unwrap(), session);

        // Two users on the *same* custom scenario need only one local
        // definition.
        let custom = ScenarioBuilder::new("Shared")
            .model(HandTracking, 30.0)
            .build()
            .unwrap();
        let session = SessionSpec::new("s")
            .with_user(custom.clone(), 0.0)
            .with_user(custom, 0.1);
        let json = session_to_json(&session);
        assert_eq!(json.matches("\"Shared\"").count(), 3, "{json}"); // 1 def + 2 refs
        assert_eq!(session_from_str(&json, &catalog).unwrap(), session);
    }

    #[test]
    #[should_panic(expected = "share the name")]
    fn exporting_duplicate_named_distinct_scenarios_panics() {
        // The wire format references scenarios by name; silently
        // giving user B scenario A's definition would corrupt the
        // round trip.
        let a = ScenarioBuilder::new("X")
            .model(HandTracking, 30.0)
            .build()
            .unwrap();
        let b = ScenarioBuilder::new("X")
            .model(EyeSegmentation, 60.0)
            .build()
            .unwrap();
        let session = SessionSpec::new("s").with_user(a, 0.0).with_user(b, 0.1);
        let _ = session_to_json(&session);
    }

    #[test]
    #[should_panic(expected = "shadows a builtin name")]
    fn exporting_builtin_shadowing_scenario_panics() {
        // A non-builtin "VR Gaming" would export as a local def that
        // collides with the builtin on reload.
        let shadow = ScenarioBuilder::new("VR Gaming")
            .model(HandTracking, 30.0)
            .build()
            .unwrap();
        let session = SessionSpec::new("s").with_user(shadow, 0.0);
        let _ = session_to_json(&session);
    }
}
