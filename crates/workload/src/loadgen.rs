//! Jittered inference-request generation (Box 1).
//!
//! For each active model in a scenario, the generator emits one
//! [`InferenceRequest`] per consumed sensor frame over the run
//! duration. Request times follow Definition 7:
//!
//! ```text
//! Treq = Linit + InFrameID / FPS_sensor + 2·Jt·(Dist(rand) − 0.5)
//! ```
//!
//! with `Dist` a Gaussian mapped into `[0, 1]` (the paper's default),
//! and deadlines follow Definition 8 at the *model's* consumption rate
//! (the arrival of the next frame the model would process — Figure 3's
//! "30 FPS deadline" for a 30 FPS model on a 60 FPS camera).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xrbench_models::ModelId;

use crate::scenario::ScenarioSpec;
use crate::sources::source_spec;

/// One inference request `IR = (µ, InFrameID)` (Definition 6) with its
/// materialized timing.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceRequest {
    /// The model to run.
    pub model: ModelId,
    /// The model-local frame index (0, 1, 2, ... at the model's rate).
    pub frame_id: u64,
    /// The sensor frame consumed (`InFrameID` at the sensor's rate).
    pub sensor_frame: u64,
    /// Jittered arrival time of the input data, in seconds
    /// (`Treq`, Definition 7).
    pub t_req: f64,
    /// Processing deadline in seconds (`Tdl`, Definition 8): the
    /// un-jittered arrival of the next consumed frame.
    pub t_deadline: f64,
}

impl InferenceRequest {
    /// The slack `Tsl = Tdl − Treq` (Definition 9).
    pub fn slack_s(&self) -> f64 {
        self.t_deadline - self.t_req
    }
}

/// Deterministic, seeded request generator.
///
/// Two generators with the same seed produce identical request streams
/// for the same scenario, which keeps whole-benchmark runs
/// reproducible while still modeling jitter.
#[derive(Debug, Clone)]
pub struct LoadGenerator {
    seed: u64,
}

impl LoadGenerator {
    /// Creates a generator with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Generates all inference requests for `spec` over `duration_s`
    /// seconds, sorted by request time.
    ///
    /// Each model emits `⌈target_fps · duration⌉` requests — the
    /// paper requires a number of runs equal to the target processing
    /// rate within the (default one-second) duration.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is not positive.
    pub fn generate(&self, spec: &ScenarioSpec, duration_s: f64) -> Vec<InferenceRequest> {
        assert!(duration_s > 0.0, "duration must be positive");
        let mut out = Vec::new();
        for sm in &spec.models {
            let src = source_spec(sm.model.driving_source());
            // A per-(model, scenario) RNG keeps streams independent.
            let mut rng = StdRng::seed_from_u64(
                self.seed ^ (sm.model as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let n = (sm.target_fps * duration_s).ceil() as u64;
            let ratio = src.fps / sm.target_fps;
            assert!(
                ratio >= 1.0 - 1e-9,
                "{}: target rate {} exceeds sensor rate {}",
                sm.model,
                sm.target_fps,
                src.fps
            );
            let linit = src.init_latency_ms / 1e3;
            let jt = src.jitter_ms / 1e3;
            for k in 0..n {
                // Consumed sensor frames: floor(k * sensor/model) gives
                // the 3:4 skip pattern for 45 FPS models on a 60 FPS
                // camera and every-other-frame for 30 FPS models.
                let sensor_frame = (k as f64 * ratio).floor() as u64;
                let next_frame = ((k + 1) as f64 * ratio).floor() as u64;
                let jitter = 2.0 * jt * (gaussian_unit(&mut rng) - 0.5);
                let t_req = linit + sensor_frame as f64 / src.fps + jitter;
                let t_deadline = linit + next_frame as f64 / src.fps;
                out.push(InferenceRequest {
                    model: sm.model,
                    frame_id: k,
                    sensor_frame,
                    t_req,
                    t_deadline,
                });
            }
        }
        out.sort_by(|a, b| a.t_req.total_cmp(&b.t_req));
        out
    }
}

/// Draws from a Gaussian squashed into `[0, 1]`: `N(0.5, 0.25²)`
/// clamped, matching Box 1's requirement `Dist(x) ∈ [0, 1]`.
fn gaussian_unit(rng: &mut StdRng) -> f64 {
    // Box–Muller transform.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (0.5 + 0.25 * z).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::UsageScenario;
    use xrbench_models::ModelId;

    fn count(reqs: &[InferenceRequest], m: ModelId) -> usize {
        reqs.iter().filter(|r| r.model == m).count()
    }

    #[test]
    fn request_counts_match_target_rates() {
        let spec = UsageScenario::SocialInteractionA.spec();
        let reqs = LoadGenerator::new(7).generate(&spec, 1.0);
        assert_eq!(count(&reqs, ModelId::HandTracking), 30);
        assert_eq!(count(&reqs, ModelId::EyeSegmentation), 60);
        assert_eq!(count(&reqs, ModelId::GazeEstimation), 60);
        assert_eq!(count(&reqs, ModelId::DepthRefinement), 30);
    }

    #[test]
    fn requests_sorted_by_time() {
        let spec = UsageScenario::ArAssistant.spec();
        let reqs = LoadGenerator::new(3).generate(&spec, 1.0);
        for w in reqs.windows(2) {
            assert!(w[0].t_req <= w[1].t_req);
        }
    }

    #[test]
    fn deterministic_for_same_seed_different_across_seeds() {
        let spec = UsageScenario::VrGaming.spec();
        let a = LoadGenerator::new(11).generate(&spec, 1.0);
        let b = LoadGenerator::new(11).generate(&spec, 1.0);
        let c = LoadGenerator::new(12).generate(&spec, 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn jitter_bounded_by_jt() {
        let spec = UsageScenario::SocialInteractionA.spec();
        let reqs = LoadGenerator::new(5).generate(&spec, 2.0);
        for r in &reqs {
            let src = source_spec(r.model.driving_source());
            let nominal = src.init_latency_ms / 1e3 + r.sensor_frame as f64 / src.fps;
            let dev = (r.t_req - nominal).abs();
            assert!(
                dev <= src.jitter_ms / 1e3 + 1e-12,
                "{}: jitter {dev} exceeds Jt",
                r.model
            );
        }
    }

    #[test]
    fn skip_pattern_for_30fps_on_60fps_camera() {
        let spec = UsageScenario::SocialInteractionA.spec();
        let reqs = LoadGenerator::new(1).generate(&spec, 1.0);
        let ht: Vec<u64> = reqs
            .iter()
            .filter(|r| r.model == ModelId::HandTracking)
            .map(|r| r.sensor_frame)
            .collect();
        // Every other camera frame: 0, 2, 4, ...
        for (k, f) in ht.iter().enumerate() {
            assert_eq!(*f, 2 * k as u64);
        }
    }

    #[test]
    fn skip_pattern_for_45fps_on_60fps_camera() {
        let spec = UsageScenario::VrGaming.spec();
        let reqs = LoadGenerator::new(1).generate(&spec, 1.0);
        let ht: Vec<u64> = reqs
            .iter()
            .filter(|r| r.model == ModelId::HandTracking)
            .map(|r| r.sensor_frame)
            .collect();
        // 3-of-4 pattern: 0,1,2,4,5,6,8,...
        assert_eq!(&ht[..8], &[0, 1, 2, 4, 5, 6, 8, 9]);
        assert_eq!(ht.len(), 45);
    }

    #[test]
    fn deadline_is_next_consumed_frame() {
        let spec = UsageScenario::SocialInteractionA.spec();
        let reqs = LoadGenerator::new(1).generate(&spec, 1.0);
        let dr: Vec<&InferenceRequest> = reqs
            .iter()
            .filter(|r| r.model == ModelId::DepthRefinement)
            .collect();
        // 30 FPS model on 60 FPS camera: deadline gap = 2 frames.
        let gap = dr[0].t_deadline - (dr[0].t_req - (dr[0].t_req - dr[0].t_deadline + 2.0 / 60.0));
        assert!((gap - 2.0 / 60.0).abs() < 1e-9);
        // Figure 3: DR frame-0 deadline at Linit + 2/60 s.
        let linit = source_spec(ModelId::DepthRefinement.driving_source()).init_latency_ms / 1e3;
        assert!((dr[0].t_deadline - (linit + 2.0 / 60.0)).abs() < 1e-12);
    }

    #[test]
    fn slack_positive_in_expectation() {
        let spec = UsageScenario::VrGaming.spec();
        let reqs = LoadGenerator::new(9).generate(&spec, 1.0);
        let avg: f64 = reqs.iter().map(InferenceRequest::slack_s).sum::<f64>() / reqs.len() as f64;
        assert!(avg > 0.0);
    }

    #[test]
    fn longer_duration_scales_counts() {
        let spec = UsageScenario::VrGaming.spec();
        let reqs = LoadGenerator::new(2).generate(&spec, 3.0);
        assert_eq!(count(&reqs, ModelId::HandTracking), 135);
        assert_eq!(count(&reqs, ModelId::EyeSegmentation), 180);
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn zero_duration_panics() {
        let spec = UsageScenario::VrGaming.spec();
        let _ = LoadGenerator::new(0).generate(&spec, 0.0);
    }

    #[test]
    fn mic_models_paced_at_3hz() {
        let spec = UsageScenario::OutdoorActivityA.spec();
        let reqs = LoadGenerator::new(4).generate(&spec, 1.0);
        let kd: Vec<&InferenceRequest> = reqs
            .iter()
            .filter(|r| r.model == ModelId::KeywordDetection)
            .collect();
        assert_eq!(kd.len(), 3);
        // 320 ms apart (3 FPS).
        let gap = kd[1].t_deadline - kd[0].t_deadline;
        assert!((gap - 1.0 / 3.0).abs() < 1e-9);
    }
}
