//! # xrbench-workload
//!
//! Usage scenarios, input sources, and load generation for XRBench.
//!
//! This crate encodes:
//!
//! * **Table 3** — the three input sources of a metaverse device
//!   (camera 60 FPS, lidar 60 FPS, microphone 3 FPS) with per-frame
//!   jitter ([`sources`]).
//! * **Table 2** — the seven usage scenarios with per-model target
//!   processing rates and the data/control dependencies of the eye and
//!   speech pipelines ([`scenario`]).
//! * **Box 1** — inference request times, deadlines, and slack,
//!   including the jitter term
//!   `2·Jt·(Dist(rand(inSrcID × InFrameID)) − 0.5)` ([`loadgen`]).
//!
//! Beyond the paper, the crate hosts the scenario composition engine:
//!
//! * a fluent, validated [`ScenarioBuilder`] (cycle detection,
//!   rate/probability sanity, no dependencies on absent models) that
//!   the seven Table 2 scenarios are themselves expressed through;
//! * a runtime [`ScenarioCatalog`] registry so user-defined scenarios
//!   flow through load generation, simulation, and scoring exactly
//!   like the built-ins;
//! * multi-user [`SessionSpec`]s that overlay N staggered, jittered
//!   scenario instances into one merged request stream ([`session`]);
//! * a declarative JSON spec format for scenarios and sessions
//!   ([`spec`]) whose loader funnels every document through the same
//!   validated builder — text files get code's diagnostics;
//! * a seeded procedural scenario generator ([`ScenarioSpace`]) for
//!   diversity sweeps beyond the Table 2 catalog ([`space`]).
//!
//! ## Example
//!
//! ```
//! use xrbench_workload::{UsageScenario, LoadGenerator};
//!
//! let spec = UsageScenario::VrGaming.spec();
//! let requests = LoadGenerator::new(42).generate(&spec, 1.0);
//! // 45 HT + 60 ES + 60 GE requests in one second.
//! assert_eq!(requests.len(), 45 + 60 + 60);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod catalog;
pub mod loadgen;
pub mod scenario;
pub mod session;
pub mod sources;
pub mod space;
pub mod spec;

pub use builder::{ScenarioBuildError, ScenarioBuilder};
pub use catalog::{CatalogError, ScenarioCatalog};
pub use loadgen::{InferenceRequest, LoadGenerator};
pub use scenario::{DependencyKind, ModelDependency, ScenarioModel, ScenarioSpec, UsageScenario};
pub use session::{SessionRequest, SessionSpec, SessionUser};
pub use sources::{source_spec, SourceSpec};
pub use space::ScenarioSpace;
pub use spec::{scenario_from_str, scenario_to_json, session_from_str, session_to_json, SpecError};
