//! # xrbench-workload
//!
//! Usage scenarios, input sources, and load generation for XRBench.
//!
//! This crate encodes:
//!
//! * **Table 3** — the three input sources of a metaverse device
//!   (camera 60 FPS, lidar 60 FPS, microphone 3 FPS) with per-frame
//!   jitter ([`sources`]).
//! * **Table 2** — the seven usage scenarios with per-model target
//!   processing rates and the data/control dependencies of the eye and
//!   speech pipelines ([`scenario`]).
//! * **Box 1** — inference request times, deadlines, and slack,
//!   including the jitter term
//!   `2·Jt·(Dist(rand(inSrcID × InFrameID)) − 0.5)` ([`loadgen`]).
//!
//! ## Example
//!
//! ```
//! use xrbench_workload::{UsageScenario, LoadGenerator};
//!
//! let spec = UsageScenario::VrGaming.spec();
//! let requests = LoadGenerator::new(42).generate(&spec, 1.0);
//! // 45 HT + 60 ES + 60 GE requests in one second.
//! assert_eq!(requests.len(), 45 + 60 + 60);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;
pub mod scenario;
pub mod sources;

pub use loadgen::{InferenceRequest, LoadGenerator};
pub use scenario::{DependencyKind, ModelDependency, ScenarioModel, ScenarioSpec, UsageScenario};
pub use sources::{source_spec, SourceSpec};
