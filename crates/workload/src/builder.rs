//! Fluent, validated construction of usage scenarios.
//!
//! [`ScenarioBuilder`] is the front door of the scenario composition
//! engine: the seven Table 2 scenarios are expressed through it (see
//! [`crate::UsageScenario::spec`]), and user-defined scenarios built
//! the same way flow through load generation, simulation, and scoring
//! identically. [`ScenarioBuilder::build`] performs the validation the
//! raw [`ScenarioSpec`] struct cannot: every dependency upstream must
//! be an active model of the same scenario, the dependency graph must
//! be acyclic, rates must be positive and not exceed the driving
//! sensor's rate, and trigger probabilities must lie in `[0, 1]`.

use std::fmt;

use xrbench_models::ModelId;

use crate::scenario::{DependencyKind, ModelDependency, ScenarioModel, ScenarioSpec};
use crate::sources::source_spec;

/// Why a scenario under construction is invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioBuildError {
    /// The scenario name is empty.
    EmptyName,
    /// The scenario lists no models.
    NoModels,
    /// The same model was added twice.
    DuplicateModel(ModelId),
    /// A target rate is zero, negative, or not finite.
    InvalidRate {
        /// The offending model.
        model: ModelId,
        /// The rejected rate.
        target_fps: f64,
    },
    /// A target rate exceeds the driving sensor's streaming rate — the
    /// model would need frames that never arrive.
    RateExceedsSource {
        /// The offending model.
        model: ModelId,
        /// The rejected rate.
        target_fps: f64,
        /// The sensor's streaming rate.
        source_fps: f64,
    },
    /// A dependency names an upstream model that is not an active
    /// model of this scenario (the latent `ScenarioSpec` footgun).
    UnknownUpstream {
        /// The dependent model.
        model: ModelId,
        /// The absent upstream.
        upstream: ModelId,
    },
    /// A model depends on itself.
    SelfDependency(ModelId),
    /// The same dependency edge was declared twice.
    DuplicateDependency {
        /// The dependent model.
        model: ModelId,
        /// The repeated upstream.
        upstream: ModelId,
    },
    /// The dependency graph contains a cycle (listed in walk order).
    DependencyCycle(Vec<ModelId>),
    /// A trigger probability is outside `[0, 1]`.
    InvalidProbability {
        /// The dependent model.
        model: ModelId,
        /// The upstream of the offending edge.
        upstream: ModelId,
        /// The rejected probability.
        probability: f64,
    },
    /// A dependency was declared for a model never added via
    /// [`ScenarioBuilder::model`] / [`ScenarioBuilder::dependent`].
    DependencyForAbsentModel(ModelId),
}

impl fmt::Display for ScenarioBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyName => write!(f, "scenario name must not be empty"),
            Self::NoModels => write!(f, "scenario must list at least one model"),
            Self::DuplicateModel(m) => write!(f, "model {m} added twice"),
            Self::InvalidRate { model, target_fps } => {
                write!(
                    f,
                    "{model}: target rate {target_fps} must be positive and finite"
                )
            }
            Self::RateExceedsSource {
                model,
                target_fps,
                source_fps,
            } => write!(
                f,
                "{model}: target rate {target_fps} exceeds its sensor's {source_fps} FPS"
            ),
            Self::UnknownUpstream { model, upstream } => write!(
                f,
                "{model} depends on {upstream}, which is not an active model of this scenario"
            ),
            Self::SelfDependency(m) => write!(f, "{m} depends on itself"),
            Self::DuplicateDependency { model, upstream } => {
                write!(f, "dependency {upstream} -> {model} declared twice")
            }
            Self::DependencyCycle(cycle) => {
                write!(f, "dependency cycle: ")?;
                for (i, m) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{m}")?;
                }
                Ok(())
            }
            Self::InvalidProbability {
                model,
                upstream,
                probability,
            } => write!(
                f,
                "{upstream} -> {model}: trigger probability {probability} must be in [0, 1]"
            ),
            Self::DependencyForAbsentModel(m) => {
                write!(f, "dependency declared for {m}, which was never added")
            }
        }
    }
}

impl std::error::Error for ScenarioBuildError {}

/// Fluent builder for validated [`ScenarioSpec`]s.
///
/// ```
/// use xrbench_workload::{DependencyKind, ScenarioBuilder};
/// use xrbench_models::ModelId::*;
///
/// let spec = ScenarioBuilder::new("AR Co-pilot")
///     .describe("Hands + scene + voice assistant")
///     .model(HandTracking, 30.0)
///     .model(KeywordDetection, 3.0)
///     .dependent(SpeechRecognition, 3.0, KeywordDetection, DependencyKind::Control, 0.8)
///     .build()
///     .unwrap();
/// assert_eq!(spec.num_models(), 3);
/// assert!(spec.is_dynamic());
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    name: String,
    description: String,
    models: Vec<(ModelId, f64)>,
    deps: Vec<(ModelId, ModelDependency)>,
}

impl ScenarioBuilder {
    /// Starts a scenario with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            description: String::new(),
            models: Vec::new(),
            deps: Vec::new(),
        }
    }

    /// Sets the one-line description.
    #[must_use]
    pub fn describe(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Adds an independent model at a target processing rate.
    #[must_use]
    pub fn model(mut self, model: ModelId, target_fps: f64) -> Self {
        self.models.push((model, target_fps));
        self
    }

    /// Adds a model with one upstream dependency (the common cascaded
    /// case: ES → GE, KD → SR). Further edges can be stacked with
    /// [`Self::dependency`].
    #[must_use]
    pub fn dependent(
        self,
        model: ModelId,
        target_fps: f64,
        upstream: ModelId,
        kind: DependencyKind,
        trigger_probability: f64,
    ) -> Self {
        self.model(model, target_fps)
            .dependency(model, upstream, kind, trigger_probability)
    }

    /// Declares an additional dependency edge for an already-added
    /// model.
    #[must_use]
    pub fn dependency(
        mut self,
        model: ModelId,
        upstream: ModelId,
        kind: DependencyKind,
        trigger_probability: f64,
    ) -> Self {
        self.deps.push((
            model,
            ModelDependency {
                upstream,
                kind,
                trigger_probability,
            },
        ));
        self
    }

    /// Validates and assembles the scenario.
    ///
    /// # Errors
    ///
    /// Returns the first [`ScenarioBuildError`] encountered: empty
    /// name / model list, duplicate models, invalid or
    /// sensor-exceeding rates, dependencies on absent models,
    /// self-dependencies, duplicate edges, out-of-range trigger
    /// probabilities, or dependency cycles.
    pub fn build(self) -> Result<ScenarioSpec, ScenarioBuildError> {
        if self.name.trim().is_empty() {
            return Err(ScenarioBuildError::EmptyName);
        }
        if self.models.is_empty() {
            return Err(ScenarioBuildError::NoModels);
        }
        let mut models: Vec<ScenarioModel> = Vec::with_capacity(self.models.len());
        for &(model, target_fps) in &self.models {
            if models.iter().any(|m| m.model == model) {
                return Err(ScenarioBuildError::DuplicateModel(model));
            }
            if !(target_fps.is_finite() && target_fps > 0.0) {
                return Err(ScenarioBuildError::InvalidRate { model, target_fps });
            }
            let src = source_spec(model.driving_source());
            if target_fps > src.fps + 1e-9 {
                return Err(ScenarioBuildError::RateExceedsSource {
                    model,
                    target_fps,
                    source_fps: src.fps,
                });
            }
            models.push(ScenarioModel {
                model,
                target_fps,
                deps: Vec::new(),
            });
        }
        for (model, dep) in self.deps {
            if dep.upstream == model {
                return Err(ScenarioBuildError::SelfDependency(model));
            }
            if !models.iter().any(|m| m.model == dep.upstream) {
                return Err(ScenarioBuildError::UnknownUpstream {
                    model,
                    upstream: dep.upstream,
                });
            }
            if !(dep.trigger_probability.is_finite()
                && (0.0..=1.0).contains(&dep.trigger_probability))
            {
                return Err(ScenarioBuildError::InvalidProbability {
                    model,
                    upstream: dep.upstream,
                    probability: dep.trigger_probability,
                });
            }
            let Some(entry) = models.iter_mut().find(|m| m.model == model) else {
                return Err(ScenarioBuildError::DependencyForAbsentModel(model));
            };
            if entry.deps.iter().any(|d| d.upstream == dep.upstream) {
                return Err(ScenarioBuildError::DuplicateDependency {
                    model,
                    upstream: dep.upstream,
                });
            }
            entry.deps.push(dep);
        }
        detect_cycle(&models)?;
        Ok(ScenarioSpec {
            name: self.name,
            description: self.description,
            models,
        })
    }
}

/// Depth-first cycle detection over the dependency graph.
fn detect_cycle(models: &[ScenarioModel]) -> Result<(), ScenarioBuildError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Gray,
        Black,
    }
    fn visit(
        models: &[ScenarioModel],
        idx: usize,
        marks: &mut [Mark],
        path: &mut Vec<ModelId>,
    ) -> Result<(), ScenarioBuildError> {
        marks[idx] = Mark::Gray;
        path.push(models[idx].model);
        for dep in &models[idx].deps {
            let up = models
                .iter()
                .position(|m| m.model == dep.upstream)
                .expect("upstream presence validated before cycle check");
            match marks[up] {
                Mark::Gray => {
                    // Report only the cycle itself, not the DFS path
                    // prefix that led into it.
                    let start = path
                        .iter()
                        .position(|m| *m == dep.upstream)
                        .expect("gray node is on the current path");
                    let mut cycle = path[start..].to_vec();
                    cycle.push(dep.upstream);
                    return Err(ScenarioBuildError::DependencyCycle(cycle));
                }
                Mark::White => visit(models, up, marks, path)?,
                Mark::Black => {}
            }
        }
        path.pop();
        marks[idx] = Mark::Black;
        Ok(())
    }
    let mut marks = vec![Mark::White; models.len()];
    let mut path = Vec::new();
    for i in 0..models.len() {
        if marks[i] == Mark::White {
            visit(models, i, &mut marks, &mut path)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::UsageScenario;
    use xrbench_models::ModelId::*;

    #[test]
    fn builds_a_valid_custom_scenario() {
        let spec = ScenarioBuilder::new("Workbench")
            .describe("test")
            .model(HandTracking, 30.0)
            .dependent(
                GazeEstimation,
                60.0,
                EyeSegmentation,
                DependencyKind::Data,
                1.0,
            )
            .model(EyeSegmentation, 60.0)
            .build()
            .unwrap();
        assert_eq!(spec.name, "Workbench");
        assert_eq!(spec.num_models(), 3);
        assert_eq!(
            spec.model(GazeEstimation).unwrap().deps[0].upstream,
            EyeSegmentation
        );
    }

    #[test]
    fn rejects_empty_name_and_no_models() {
        assert_eq!(
            ScenarioBuilder::new("  ").model(HandTracking, 30.0).build(),
            Err(ScenarioBuildError::EmptyName)
        );
        assert_eq!(
            ScenarioBuilder::new("x").build(),
            Err(ScenarioBuildError::NoModels)
        );
    }

    #[test]
    fn rejects_duplicate_model() {
        let err = ScenarioBuilder::new("x")
            .model(HandTracking, 30.0)
            .model(HandTracking, 45.0)
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioBuildError::DuplicateModel(HandTracking));
    }

    #[test]
    fn rejects_bad_rates() {
        for fps in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            let err = ScenarioBuilder::new("x")
                .model(HandTracking, fps)
                .build()
                .unwrap_err();
            assert!(
                matches!(err, ScenarioBuildError::InvalidRate { model, .. } if model == HandTracking),
                "{fps}: {err}"
            );
        }
    }

    #[test]
    fn rejects_rate_beyond_sensor() {
        // Microphone streams at 3 FPS; 10 FPS keyword detection would
        // need frames that never arrive.
        let err = ScenarioBuilder::new("x")
            .model(KeywordDetection, 10.0)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioBuildError::RateExceedsSource {
                model: KeywordDetection,
                target_fps: 10.0,
                source_fps: 3.0,
            }
        );
    }

    #[test]
    fn rejects_dependency_on_absent_model() {
        // The latent ScenarioSpec footgun: a dependency on a model
        // that is not part of the scenario. The builder refuses it.
        let err = ScenarioBuilder::new("x")
            .dependent(
                GazeEstimation,
                60.0,
                EyeSegmentation,
                DependencyKind::Data,
                1.0,
            )
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioBuildError::UnknownUpstream {
                model: GazeEstimation,
                upstream: EyeSegmentation,
            }
        );
    }

    #[test]
    fn rejects_self_and_duplicate_dependencies() {
        let err = ScenarioBuilder::new("x")
            .model(HandTracking, 30.0)
            .dependency(HandTracking, HandTracking, DependencyKind::Data, 1.0)
            .build()
            .unwrap_err();
        assert_eq!(err, ScenarioBuildError::SelfDependency(HandTracking));

        let err = ScenarioBuilder::new("x")
            .model(EyeSegmentation, 60.0)
            .dependent(
                GazeEstimation,
                60.0,
                EyeSegmentation,
                DependencyKind::Data,
                1.0,
            )
            .dependency(GazeEstimation, EyeSegmentation, DependencyKind::Data, 1.0)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioBuildError::DuplicateDependency {
                model: GazeEstimation,
                upstream: EyeSegmentation,
            }
        );
    }

    #[test]
    fn rejects_dependency_cycles() {
        let err = ScenarioBuilder::new("x")
            .model(EyeSegmentation, 60.0)
            .model(GazeEstimation, 60.0)
            .dependency(GazeEstimation, EyeSegmentation, DependencyKind::Data, 1.0)
            .dependency(EyeSegmentation, GazeEstimation, DependencyKind::Data, 1.0)
            .build()
            .unwrap_err();
        match err {
            ScenarioBuildError::DependencyCycle(cycle) => {
                assert!(cycle.len() >= 3, "{cycle:?}");
                assert_eq!(cycle.first(), cycle.last());
            }
            other => panic!("expected cycle, got {other}"),
        }
    }

    #[test]
    fn cycle_report_excludes_non_cycle_prefix() {
        // HT -> ES, ES <-> GE: the DFS enters the cycle through HT,
        // but HT is not part of it and must not be reported.
        let err = ScenarioBuilder::new("x")
            .model(HandTracking, 30.0)
            .model(EyeSegmentation, 60.0)
            .model(GazeEstimation, 60.0)
            .dependency(HandTracking, EyeSegmentation, DependencyKind::Data, 1.0)
            .dependency(EyeSegmentation, GazeEstimation, DependencyKind::Data, 1.0)
            .dependency(GazeEstimation, EyeSegmentation, DependencyKind::Data, 1.0)
            .build()
            .unwrap_err();
        match err {
            ScenarioBuildError::DependencyCycle(cycle) => {
                assert!(!cycle.contains(&HandTracking), "{cycle:?}");
                assert_eq!(cycle.first(), cycle.last(), "{cycle:?}");
                assert_eq!(cycle.len(), 3, "{cycle:?}");
            }
            other => panic!("expected cycle, got {other}"),
        }
    }

    #[test]
    fn rejects_out_of_range_probability() {
        for p in [-0.1, 1.5, f64::NAN] {
            let err = ScenarioBuilder::new("x")
                .model(KeywordDetection, 3.0)
                .dependent(
                    SpeechRecognition,
                    3.0,
                    KeywordDetection,
                    DependencyKind::Control,
                    p,
                )
                .build()
                .unwrap_err();
            assert!(
                matches!(err, ScenarioBuildError::InvalidProbability { .. }),
                "{p}: {err}"
            );
        }
    }

    #[test]
    fn dependency_for_model_never_added_is_rejected() {
        let err = ScenarioBuilder::new("x")
            .model(EyeSegmentation, 60.0)
            .dependency(GazeEstimation, EyeSegmentation, DependencyKind::Data, 1.0)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioBuildError::DependencyForAbsentModel(GazeEstimation)
        );
    }

    #[test]
    fn table2_scenarios_round_trip_through_the_builder() {
        // Every paper scenario is itself expressed via the builder;
        // sanity-check the shape survives.
        for s in UsageScenario::ALL {
            let spec = s.spec();
            assert_eq!(spec.name, s.name());
            assert_eq!(spec.description, s.description());
            assert!(!spec.models.is_empty());
        }
    }

    #[test]
    fn errors_display_usefully() {
        let e = ScenarioBuildError::UnknownUpstream {
            model: GazeEstimation,
            upstream: EyeSegmentation,
        };
        let msg = e.to_string();
        assert!(msg.contains("not an active model"), "{msg}");
        let e = ScenarioBuildError::DependencyCycle(vec![
            EyeSegmentation,
            GazeEstimation,
            EyeSegmentation,
        ]);
        assert!(e.to_string().contains("->"));
    }
}
