//! Usage scenarios and target processing rates (Table 2).
//!
//! A usage scenario `θ = {(µ, Dep_µ, FPS_model)}` (Definition 4) lists
//! the active unit models with their target processing rates and
//! model-level dependencies. The benchmark suite `Ω` (Definition 5) is
//! the set of all seven scenarios.

use std::fmt;

use xrbench_models::ModelId;

/// The kind of a model-level dependency (Table 2: "dep: D" / "dep: C").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DependencyKind {
    /// Data dependency: the downstream model consumes the upstream
    /// model's output (e.g. eye segmentation → gaze estimation).
    Data,
    /// Control dependency: the upstream model's *result* decides
    /// whether the downstream model runs at all (e.g. keyword
    /// detection → speech recognition).
    Control,
}

impl fmt::Display for DependencyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DependencyKind::Data => "Data",
            DependencyKind::Control => "Control",
        })
    }
}

/// A dependency edge of one scenario model on an upstream model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDependency {
    /// The model that must complete first (`Dep_µ` member).
    pub upstream: ModelId,
    /// Data or control dependency.
    pub kind: DependencyKind,
    /// The probability that the upstream result triggers this model
    /// (§4.1 "Modeling Dynamic Cascading"). `1.0` for pure data
    /// dependencies; the keyword-utterance probability for KD → SR
    /// (0.2 for outdoor scenarios, 0.5 for AR assistant); swept for
    /// ES → GE in the Figure 7 deep dive.
    pub trigger_probability: f64,
}

/// One active model within a usage scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioModel {
    /// The unit model.
    pub model: ModelId,
    /// Target processing rate in inferences per second (`FPS_model`).
    pub target_fps: f64,
    /// Upstream dependencies (empty for independent models).
    pub deps: Vec<ModelDependency>,
}

/// A fully-specified usage scenario (Definition 4).
///
/// Specs are *open*: the seven Table 2 scenarios are ordinary values
/// built through [`crate::ScenarioBuilder`] and registered in
/// [`crate::ScenarioCatalog::builtin`], and user-defined scenarios
/// flow through load generation, simulation, and scoring identically.
/// Use the builder to construct validated specs — it rejects unknown
/// upstream models, dependency cycles, and insane rates.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Display name (unique within a catalog).
    pub name: String,
    /// One-line description of the usage the scenario models.
    pub description: String,
    /// The active models with rates and dependencies.
    pub models: Vec<ScenarioModel>,
}

impl ScenarioSpec {
    /// Looks up the entry for a model, if active in this scenario.
    pub fn model(&self, id: ModelId) -> Option<&ScenarioModel> {
        self.models.iter().find(|m| m.model == id)
    }

    /// Number of active models (`K = NumModels(S)`).
    pub fn num_models(&self) -> usize {
        self.models.len()
    }

    /// Whether the scenario contains a probabilistic dependency,
    /// making its simulated workload dynamic across seeds (§4.1).
    pub fn is_dynamic(&self) -> bool {
        self.models
            .iter()
            .any(|m| m.deps.iter().any(|d| d.trigger_probability < 1.0))
    }

    /// Returns a copy with the ES → GE trigger probability replaced
    /// (the Figure 7 cascading-probability sweep).
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1]`.
    pub fn with_eye_cascade_probability(mut self, probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must be in [0, 1], got {probability}"
        );
        for m in &mut self.models {
            if m.model == ModelId::GazeEstimation {
                for d in &mut m.deps {
                    if d.upstream == ModelId::EyeSegmentation {
                        d.trigger_probability = probability;
                    }
                }
            }
        }
        self
    }
}

/// The seven XRBench usage scenarios (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UsageScenario {
    /// AR messaging with AR object rendering.
    SocialInteractionA,
    /// In-person interaction with AR glasses.
    SocialInteractionB,
    /// Hiking with smart photo capture.
    OutdoorActivityA,
    /// Rest during hike (hand tracking engaged).
    OutdoorActivityB,
    /// Urban walk with informative AR objects.
    ArAssistant,
    /// Gaming with AR objects.
    ArGaming,
    /// Highly-interactive immersive VR gaming.
    VrGaming,
}

impl UsageScenario {
    /// All scenarios, in Table 2 order (the benchmark suite `Ω`).
    pub const ALL: [UsageScenario; 7] = [
        UsageScenario::SocialInteractionA,
        UsageScenario::SocialInteractionB,
        UsageScenario::OutdoorActivityA,
        UsageScenario::OutdoorActivityB,
        UsageScenario::ArAssistant,
        UsageScenario::ArGaming,
        UsageScenario::VrGaming,
    ];

    /// The scenario's display name.
    pub fn name(&self) -> &'static str {
        match self {
            UsageScenario::SocialInteractionA => "Social Interaction A",
            UsageScenario::SocialInteractionB => "Social Interaction B",
            UsageScenario::OutdoorActivityA => "Outdoor Activity A",
            UsageScenario::OutdoorActivityB => "Outdoor Activity B",
            UsageScenario::ArAssistant => "AR Assistant",
            UsageScenario::ArGaming => "AR Gaming",
            UsageScenario::VrGaming => "VR Gaming",
        }
    }

    /// The example usage description from Table 2.
    pub fn description(&self) -> &'static str {
        match self {
            UsageScenario::SocialInteractionA => "AR messaging with AR object rendering",
            UsageScenario::SocialInteractionB => "In-person interaction with AR glasses",
            UsageScenario::OutdoorActivityA => "Hiking with smart photo capture",
            UsageScenario::OutdoorActivityB => "Rest during hike",
            UsageScenario::ArAssistant => "Urban walk with informative AR objects",
            UsageScenario::ArGaming => "Gaming with AR object",
            UsageScenario::VrGaming => "Highly-interactive immersive VR gaming",
        }
    }

    /// Whether the scenario contains a probabilistic control
    /// dependency, making its workload dynamic (the paper's artifact
    /// notes Outdoor A/B and AR Assistant produce non-deterministic
    /// results).
    pub fn is_dynamic(&self) -> bool {
        self.spec().is_dynamic()
    }

    /// Builds the Table 2 specification for this scenario through
    /// [`crate::ScenarioBuilder`].
    ///
    /// Keyword-utterance probabilities follow §4.1: 0.2 for the
    /// outdoor scenarios, 0.5 for AR assistant. The ES → GE data
    /// dependency defaults to probability 1.0.
    pub fn spec(&self) -> ScenarioSpec {
        use DependencyKind::{Control, Data};
        use ModelId::*;
        let b = crate::ScenarioBuilder::new(self.name()).describe(self.description());
        let b = match self {
            UsageScenario::SocialInteractionA => b
                .model(HandTracking, 30.0)
                .model(EyeSegmentation, 60.0)
                .dependent(GazeEstimation, 60.0, EyeSegmentation, Data, 1.0)
                .model(DepthRefinement, 30.0),
            UsageScenario::SocialInteractionB => b
                .model(EyeSegmentation, 60.0)
                .dependent(GazeEstimation, 60.0, EyeSegmentation, Data, 1.0)
                .model(DepthRefinement, 30.0),
            UsageScenario::OutdoorActivityA => b
                .model(KeywordDetection, 3.0)
                .dependent(SpeechRecognition, 3.0, KeywordDetection, Control, 0.2)
                .model(ObjectDetection, 10.0)
                .model(DepthRefinement, 30.0),
            UsageScenario::OutdoorActivityB => b
                .model(HandTracking, 30.0)
                .model(KeywordDetection, 3.0)
                .dependent(SpeechRecognition, 3.0, KeywordDetection, Control, 0.2),
            UsageScenario::ArAssistant => b
                .model(KeywordDetection, 3.0)
                .dependent(SpeechRecognition, 3.0, KeywordDetection, Control, 0.5)
                .model(SemanticSegmentation, 10.0)
                .model(ObjectDetection, 10.0)
                .model(DepthEstimation, 30.0)
                .model(DepthRefinement, 30.0),
            UsageScenario::ArGaming => b
                .model(HandTracking, 45.0)
                .model(DepthEstimation, 30.0)
                .model(PlaneDetection, 30.0),
            UsageScenario::VrGaming => b
                .model(HandTracking, 45.0)
                .model(EyeSegmentation, 60.0)
                .dependent(GazeEstimation, 60.0, EyeSegmentation, Data, 1.0),
        };
        b.build()
            .expect("the Table 2 scenarios are valid by construction")
    }
}

impl fmt::Display for UsageScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrbench_models::ModelId::*;

    #[test]
    fn seven_scenarios() {
        assert_eq!(UsageScenario::ALL.len(), 7);
    }

    #[test]
    fn model_counts_match_section_4_4() {
        // "AR assistant and VR gaming scenarios include the most (6)
        //  and least (3) number of models, respectively."
        assert_eq!(UsageScenario::ArAssistant.spec().num_models(), 6);
        assert_eq!(UsageScenario::VrGaming.spec().num_models(), 3);
        let max = UsageScenario::ALL
            .iter()
            .map(|s| s.spec().num_models())
            .max()
            .unwrap();
        let min = UsageScenario::ALL
            .iter()
            .map(|s| s.spec().num_models())
            .min()
            .unwrap();
        assert_eq!((max, min), (6, 3));
    }

    #[test]
    fn social_a_matches_figure3() {
        // Figure 3: HT 30, ES 60, GE 60, DR 30 with ES → GE data dep.
        let spec = UsageScenario::SocialInteractionA.spec();
        assert_eq!(spec.model(HandTracking).unwrap().target_fps, 30.0);
        assert_eq!(spec.model(EyeSegmentation).unwrap().target_fps, 60.0);
        let ge = spec.model(GazeEstimation).unwrap();
        assert_eq!(ge.target_fps, 60.0);
        assert_eq!(ge.deps[0].upstream, EyeSegmentation);
        assert_eq!(ge.deps[0].kind, DependencyKind::Data);
        assert_eq!(spec.model(DepthRefinement).unwrap().target_fps, 30.0);
    }

    #[test]
    fn ar_gaming_matches_figure6_models() {
        // Figure 6 legend: Depth Estimation, Hand Tracking, Plane
        // Detection; HT at 45, DE/PD at 30.
        let spec = UsageScenario::ArGaming.spec();
        assert_eq!(spec.model(HandTracking).unwrap().target_fps, 45.0);
        assert_eq!(spec.model(DepthEstimation).unwrap().target_fps, 30.0);
        assert_eq!(spec.model(PlaneDetection).unwrap().target_fps, 30.0);
    }

    #[test]
    fn speech_pipeline_is_control_dependent() {
        for (s, p) in [
            (UsageScenario::OutdoorActivityA, 0.2),
            (UsageScenario::OutdoorActivityB, 0.2),
            (UsageScenario::ArAssistant, 0.5),
        ] {
            let spec = s.spec();
            let sr = spec.model(SpeechRecognition).unwrap();
            assert_eq!(sr.deps[0].kind, DependencyKind::Control, "{s}");
            assert_eq!(sr.deps[0].trigger_probability, p, "{s}");
            // SR rate models the 320 ms Emformer context (3 Hz).
            assert_eq!(sr.target_fps, 3.0, "{s}");
        }
    }

    #[test]
    fn dynamic_scenarios_are_the_speech_ones() {
        let dynamic: Vec<_> = UsageScenario::ALL
            .iter()
            .filter(|s| s.is_dynamic())
            .map(|s| s.name())
            .collect();
        assert_eq!(
            dynamic,
            vec!["Outdoor Activity A", "Outdoor Activity B", "AR Assistant"]
        );
    }

    #[test]
    fn eye_cascade_probability_override() {
        let spec = UsageScenario::VrGaming
            .spec()
            .with_eye_cascade_probability(0.25);
        let ge = spec.model(GazeEstimation).unwrap();
        assert_eq!(ge.deps[0].trigger_probability, 0.25);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn eye_cascade_probability_rejects_out_of_range() {
        let _ = UsageScenario::VrGaming
            .spec()
            .with_eye_cascade_probability(1.5);
    }

    #[test]
    fn target_rates_use_paper_levels() {
        // High (60/45), Medium (30), Low (10), and 3 Hz for speech.
        for s in UsageScenario::ALL {
            for m in s.spec().models {
                assert!(
                    [60.0, 45.0, 30.0, 10.0, 3.0].contains(&m.target_fps),
                    "{s}/{}: unexpected rate {}",
                    m.model,
                    m.target_fps
                );
            }
        }
    }

    #[test]
    fn names_and_descriptions_nonempty() {
        for s in UsageScenario::ALL {
            assert!(!s.name().is_empty());
            assert!(!s.description().is_empty());
        }
    }
}
