//! Procedural scenario generation: seeded sampling of the scenario
//! design space.
//!
//! XRZoo catalogs an XR application space orders of magnitude more
//! diverse than Table 2's seven scenarios. [`ScenarioSpace`] is the
//! diversity axis of the suite: a bounded space of scenario shapes
//! (model count, rate levels, dependency density) from which
//! [`ScenarioSpace::sample`] draws **valid** random scenarios — every
//! sample is assembled through [`crate::ScenarioBuilder`], so the
//! generator can only emit scenarios that a hand-written spec file
//! could also express.
//!
//! Sampling is a pure function of `(space, seed)`: the same seed always
//! yields the same scenario, so a diversity sweep is reproducible from
//! its seed range alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xrbench_models::ModelId;

use crate::builder::ScenarioBuilder;
use crate::scenario::{DependencyKind, ScenarioSpec};
use crate::sources::source_spec;

/// A bounded space of scenario shapes to sample from.
///
/// ```
/// use xrbench_workload::ScenarioSpace;
///
/// let space = ScenarioSpace::default();
/// let a = space.sample(7);
/// assert_eq!(a, space.sample(7), "sampling is deterministic");
/// assert!(!a.models.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpace {
    /// Minimum number of active models (≥ 1).
    pub min_models: usize,
    /// Maximum number of active models (≤ 11, the unit-model count).
    pub max_models: usize,
    /// Candidate target rates; each model draws from the levels its
    /// driving sensor can sustain. Defaults to the paper's levels
    /// (60 / 45 / 30 / 10 / 3 Hz).
    pub rate_levels: Vec<f64>,
    /// Probability that a non-first model gains a dependency edge on
    /// an earlier model (edges only point backwards in insertion
    /// order, so sampled graphs are acyclic by construction).
    pub dependency_probability: f64,
    /// Probability that a sampled edge is a control dependency (with a
    /// random trigger probability) rather than a data dependency
    /// (trigger probability 1).
    pub control_probability: f64,
}

impl Default for ScenarioSpace {
    fn default() -> Self {
        Self {
            min_models: 2,
            max_models: 6,
            rate_levels: vec![60.0, 45.0, 30.0, 10.0, 3.0],
            dependency_probability: 0.5,
            control_probability: 0.4,
        }
    }
}

impl ScenarioSpace {
    /// Draws one valid scenario, deterministically from `seed`.
    ///
    /// The scenario is named `Sampled #<seed>`, so samples from
    /// distinct seeds can be registered in one catalog.
    ///
    /// # Panics
    ///
    /// Panics if the space itself is malformed: `min_models == 0`,
    /// `min_models > max_models`, `max_models > 11`, no rate level,
    /// or a probability outside `[0, 1]`.
    pub fn sample(&self, seed: u64) -> ScenarioSpec {
        assert!(self.min_models >= 1, "space needs at least one model");
        assert!(
            self.min_models <= self.max_models && self.max_models <= ModelId::ALL.len(),
            "model count bounds must satisfy 1 <= min <= max <= {}",
            ModelId::ALL.len()
        );
        assert!(!self.rate_levels.is_empty(), "space needs rate levels");
        for p in [self.dependency_probability, self.control_probability] {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "probabilities must be in [0, 1], got {p}"
            );
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let count = self.min_models + rng.gen_range(0..(self.max_models - self.min_models + 1));

        // Partial Fisher-Yates over the unit models: the first `count`
        // entries are a uniform random distinct subset.
        let mut pool = ModelId::ALL;
        for i in 0..count {
            let j = i + rng.gen_range(0..(pool.len() - i));
            pool.swap(i, j);
        }
        let chosen = &pool[..count];

        let mut builder = ScenarioBuilder::new(format!("Sampled #{seed}"))
            .describe(format!("procedurally sampled scenario (seed {seed})"));
        for (i, &model) in chosen.iter().enumerate() {
            // Only levels the driving sensor can sustain are eligible;
            // every sensor streams at least 3 Hz, and the default
            // levels include 3 Hz, but a custom space could exclude
            // it — fall back to the sensor rate itself so the sample
            // stays valid.
            let source_fps = source_spec(model.driving_source()).fps;
            let eligible: Vec<f64> = self
                .rate_levels
                .iter()
                .copied()
                .filter(|r| *r <= source_fps)
                .collect();
            let target_fps = if eligible.is_empty() {
                source_fps
            } else {
                eligible[rng.gen_range(0..eligible.len())]
            };
            builder = builder.model(model, target_fps);

            // Backward-only edges keep the graph acyclic without a
            // rejection loop.
            if i > 0 && rng.gen_range(0.0..1.0) < self.dependency_probability {
                let upstream = chosen[rng.gen_range(0..i)];
                let (kind, probability) = if rng.gen_range(0.0..1.0) < self.control_probability {
                    (DependencyKind::Control, rng.gen_range(0.0..1.0))
                } else {
                    (DependencyKind::Data, 1.0)
                };
                builder = builder.dependency(model, upstream, kind, probability);
            }
        }
        builder
            .build()
            .expect("sampled scenarios are valid by construction")
    }

    /// Draws `count` scenarios from consecutive seeds starting at
    /// `base_seed`.
    pub fn sample_many(&self, base_seed: u64, count: u32) -> Vec<ScenarioSpec> {
        (0..u64::from(count))
            .map(|i| self.sample(base_seed.wrapping_add(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ScenarioCatalog;
    use crate::spec::{scenario_from_str, scenario_to_json};

    #[test]
    fn sampling_is_deterministic_and_valid() {
        let space = ScenarioSpace::default();
        for seed in 0..256u64 {
            let spec = space.sample(seed);
            assert_eq!(spec, space.sample(seed), "seed {seed}");
            assert!(
                spec.num_models() >= 2 && spec.num_models() <= 6,
                "seed {seed}"
            );
            // Validity: re-express through a spec-file round trip,
            // which replays the builder's full validation.
            let reloaded = scenario_from_str(&scenario_to_json(&spec))
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(reloaded, spec, "seed {seed}");
        }
    }

    #[test]
    fn samples_are_diverse() {
        let space = ScenarioSpace::default();
        let specs = space.sample_many(0, 64);
        let mut shapes: Vec<String> = specs
            .iter()
            .map(|s| {
                s.models
                    .iter()
                    .map(|m| format!("{}@{}+{}", m.model, m.target_fps, m.deps.len()))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        shapes.sort();
        shapes.dedup();
        assert!(
            shapes.len() > 32,
            "only {} distinct shapes in 64",
            shapes.len()
        );
        // Some samples carry dependencies, some carry control deps.
        assert!(specs
            .iter()
            .any(|s| s.models.iter().any(|m| !m.deps.is_empty())));
        assert!(specs.iter().any(|s| s.is_dynamic()));
    }

    #[test]
    fn samples_register_in_one_catalog() {
        let mut catalog = ScenarioCatalog::builtin();
        for spec in ScenarioSpace::default().sample_many(100, 16) {
            catalog
                .register(spec)
                .expect("distinct seeds, distinct names");
        }
        assert_eq!(catalog.len(), 7 + 16);
    }

    #[test]
    fn single_model_space_and_full_space_are_legal() {
        let tiny = ScenarioSpace {
            min_models: 1,
            max_models: 1,
            ..ScenarioSpace::default()
        };
        assert_eq!(tiny.sample(3).num_models(), 1);
        let full = ScenarioSpace {
            min_models: 11,
            max_models: 11,
            ..ScenarioSpace::default()
        };
        assert_eq!(full.sample(3).num_models(), 11);
    }

    #[test]
    #[should_panic(expected = "model count bounds")]
    fn malformed_space_rejected() {
        let _ = ScenarioSpace {
            min_models: 5,
            max_models: 3,
            ..ScenarioSpace::default()
        }
        .sample(0);
    }
}
