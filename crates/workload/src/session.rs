//! Multi-user sessions: overlaid, staggered scenario instances.
//!
//! A [`SessionSpec`] composes N users, each running their own (possibly
//! different) [`ScenarioSpec`] starting at a per-user offset, into one
//! merged inference-request stream. Every user's stream is generated
//! with an independent jitter seed, so identical scenarios still
//! de-synchronize the way real concurrent users do. The merged stream
//! is simulated *concurrently* on one shared system — the first step
//! toward serving production-scale populations rather than a single
//! headset.

use crate::loadgen::{InferenceRequest, LoadGenerator};
use crate::scenario::ScenarioSpec;

/// One user's slot within a session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionUser {
    /// Dense user id (0-based, assigned in registration order).
    pub user: u32,
    /// The scenario this user runs.
    pub spec: ScenarioSpec,
    /// When the user's streams start, relative to session start (s).
    pub start_offset_s: f64,
}

/// One request of the merged session stream, tagged with its user.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRequest {
    /// The originating user.
    pub user: u32,
    /// The request, with times already shifted by the user's offset.
    pub req: InferenceRequest,
}

/// A multi-user session: N staggered scenario instances merged into
/// one request stream.
///
/// ```
/// use xrbench_workload::{SessionSpec, UsageScenario};
///
/// let session = SessionSpec::uniform(
///     "vr-party",
///     UsageScenario::VrGaming.spec(),
///     4,      // users
///     0.050,  // 50 ms stagger between joins
/// );
/// let merged = session.generate(42, 1.0);
/// // 4 users × (45 HT + 60 ES + 60 GE) requests.
/// assert_eq!(merged.len(), 4 * 165);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Session display name.
    pub name: String,
    /// The users, in id order.
    pub users: Vec<SessionUser>,
}

impl SessionSpec {
    /// An empty session with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            users: Vec::new(),
        }
    }

    /// Adds one user running `spec`, starting `start_offset_s` after
    /// session start. User ids are assigned densely in call order.
    ///
    /// # Panics
    ///
    /// Panics if the offset is negative or not finite.
    #[must_use]
    pub fn with_user(mut self, spec: ScenarioSpec, start_offset_s: f64) -> Self {
        assert!(
            start_offset_s.is_finite() && start_offset_s >= 0.0,
            "start offset must be finite and non-negative, got {start_offset_s}"
        );
        let user = self.users.len() as u32;
        self.users.push(SessionUser {
            user,
            spec,
            start_offset_s,
        });
        self
    }

    /// N users all running the same scenario, joining `stagger_s`
    /// apart (user k starts at `k × stagger_s`).
    ///
    /// # Panics
    ///
    /// Panics if `users == 0` or `stagger_s` is negative/not finite.
    pub fn uniform(
        name: impl Into<String>,
        spec: ScenarioSpec,
        users: u32,
        stagger_s: f64,
    ) -> Self {
        Self::mixed(name, &[spec], users, stagger_s)
    }

    /// N users drawing scenarios round-robin from `specs`, joining
    /// `stagger_s` apart — the mixed-population case.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty, `users == 0`, or `stagger_s` is
    /// negative/not finite.
    pub fn mixed(
        name: impl Into<String>,
        specs: &[ScenarioSpec],
        users: u32,
        stagger_s: f64,
    ) -> Self {
        assert!(!specs.is_empty(), "session needs at least one scenario");
        assert!(users > 0, "session needs at least one user");
        assert!(
            stagger_s.is_finite() && stagger_s >= 0.0,
            "stagger must be finite and non-negative, got {stagger_s}"
        );
        let mut s = Self::new(name);
        for k in 0..users {
            let spec = specs[k as usize % specs.len()].clone();
            s = s.with_user(spec, f64::from(k) * stagger_s);
        }
        s
    }

    /// Number of users in the session.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// The session's total simulated span for a per-user run duration:
    /// the last user's offset plus the duration.
    pub fn span_s(&self, duration_s: f64) -> f64 {
        let max_offset = self
            .users
            .iter()
            .map(|u| u.start_offset_s)
            .fold(0.0, f64::max);
        max_offset + duration_s
    }

    /// Generates the merged, time-sorted session request stream.
    ///
    /// Each user's stream comes from its own [`LoadGenerator`] seeded
    /// with `seed` mixed with the user id (user 0 sees exactly the
    /// single-user stream for `seed`), then shifted by the user's
    /// start offset.
    ///
    /// # Panics
    ///
    /// Panics if the session has no users, user ids are not unique
    /// (the simulator keys all bookkeeping per user — duplicates would
    /// silently merge two users' streams), or `duration_s` is not
    /// positive.
    pub fn generate(&self, seed: u64, duration_s: f64) -> Vec<SessionRequest> {
        assert!(!self.users.is_empty(), "session has no users");
        let mut seen: Vec<u32> = self.users.iter().map(|u| u.user).collect();
        seen.sort_unstable();
        seen.dedup();
        assert!(
            seen.len() == self.users.len(),
            "session user ids must be unique (got {} users, {} distinct ids)",
            self.users.len(),
            seen.len()
        );
        let mut out = Vec::new();
        for u in &self.users {
            let user_seed = seed ^ u64::from(u.user).wrapping_mul(0xD6E8_FEB8_6659_FD93);
            for mut req in LoadGenerator::new(user_seed).generate(&u.spec, duration_s) {
                req.t_req += u.start_offset_s;
                req.t_deadline += u.start_offset_s;
                out.push(SessionRequest { user: u.user, req });
            }
        }
        out.sort_by(|a, b| {
            a.req
                .t_req
                .total_cmp(&b.req.t_req)
                .then(a.user.cmp(&b.user))
                .then(a.req.model.cmp(&b.req.model))
                .then(a.req.frame_id.cmp(&b.req.frame_id))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::UsageScenario;

    #[test]
    fn uniform_session_staggers_users() {
        let s = SessionSpec::uniform("s", UsageScenario::ArGaming.spec(), 3, 0.1);
        assert_eq!(s.num_users(), 3);
        for (k, u) in s.users.iter().enumerate() {
            assert_eq!(u.user, k as u32);
            assert!((u.start_offset_s - 0.1 * k as f64).abs() < 1e-12);
        }
        assert!((s.span_s(1.0) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn mixed_session_round_robins_scenarios() {
        let specs = [
            UsageScenario::VrGaming.spec(),
            UsageScenario::ArGaming.spec(),
        ];
        let s = SessionSpec::mixed("m", &specs, 5, 0.0);
        assert_eq!(s.users[0].spec.name, "VR Gaming");
        assert_eq!(s.users[1].spec.name, "AR Gaming");
        assert_eq!(s.users[4].spec.name, "VR Gaming");
    }

    #[test]
    fn merged_stream_is_sorted_and_complete() {
        let s = SessionSpec::uniform("s", UsageScenario::VrGaming.spec(), 4, 0.05);
        let reqs = s.generate(7, 1.0);
        assert_eq!(reqs.len(), 4 * 165);
        for w in reqs.windows(2) {
            assert!(w[0].req.t_req <= w[1].req.t_req);
        }
        for u in 0..4u32 {
            assert_eq!(reqs.iter().filter(|r| r.user == u).count(), 165);
        }
    }

    #[test]
    fn user_zero_matches_single_user_stream() {
        let spec = UsageScenario::SocialInteractionA.spec();
        let single = LoadGenerator::new(99).generate(&spec, 1.0);
        let s = SessionSpec::uniform("s", spec, 2, 0.0);
        let merged = s.generate(99, 1.0);
        let user0: Vec<_> = merged
            .iter()
            .filter(|r| r.user == 0)
            .map(|r| r.req.clone())
            .collect();
        assert_eq!(user0, single);
    }

    #[test]
    fn users_get_independent_jitter() {
        let s = SessionSpec::uniform("s", UsageScenario::VrGaming.spec(), 2, 0.0);
        let reqs = s.generate(3, 1.0);
        let t0: Vec<f64> = reqs
            .iter()
            .filter(|r| r.user == 0)
            .map(|r| r.req.t_req)
            .collect();
        let t1: Vec<f64> = reqs
            .iter()
            .filter(|r| r.user == 1)
            .map(|r| r.req.t_req)
            .collect();
        assert_ne!(t0, t1, "users must not share jitter streams");
    }

    #[test]
    fn offsets_shift_both_times() {
        let spec = UsageScenario::ArGaming.spec();
        let base = SessionSpec::uniform("a", spec.clone(), 1, 0.0).generate(1, 1.0);
        let shifted = SessionSpec::new("b").with_user(spec, 0.25).generate(1, 1.0);
        for (a, b) in base.iter().zip(&shifted) {
            assert!((b.req.t_req - a.req.t_req - 0.25).abs() < 1e-12);
            assert!((b.req.t_deadline - a.req.t_deadline - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "offset")]
    fn negative_offset_rejected() {
        let _ = SessionSpec::new("s").with_user(UsageScenario::VrGaming.spec(), -1.0);
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_users_rejected() {
        let _ = SessionSpec::uniform("s", UsageScenario::VrGaming.spec(), 0, 0.0);
    }

    #[test]
    #[should_panic(expected = "no users")]
    fn generating_empty_session_rejected() {
        let _ = SessionSpec::new("s").generate(1, 1.0);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_user_ids_rejected() {
        // Hand-built sessions (bypassing with_user's dense ids) must
        // not silently merge two users' streams.
        let u = SessionUser {
            user: 0,
            spec: UsageScenario::VrGaming.spec(),
            start_offset_s: 0.0,
        };
        let s = SessionSpec {
            name: "dup".into(),
            users: vec![u.clone(), u],
        };
        let _ = s.generate(1, 1.0);
    }
}
