//! A minimal, dependency-free stand-in for the `serde` crate.
//!
//! This workspace vendors its third-party dependencies so it builds
//! offline. Instead of serde's visitor architecture, the shim's
//! [`Serialize`] trait converts a value directly into an in-memory
//! JSON tree ([`json::JsonValue`]), which the vendored `serde_json`
//! shim pretty-prints and parses. `#[derive(Serialize)]` (from the
//! vendored `serde_derive`) supports structs with named fields and the
//! `#[serde(flatten)]` field attribute — the subset this workspace's
//! report types use.

#![forbid(unsafe_code)]

pub use serde_derive::Serialize;

/// The in-memory JSON tree produced by [`Serialize`].
pub mod json {
    /// A JSON value. Object entries preserve insertion order so that
    /// serialized reports keep their field order.
    #[derive(Debug, Clone, PartialEq)]
    pub enum JsonValue {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number (integers are representable exactly up to
        /// 2^53, far beyond the frame counters serialized here).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Array(Vec<JsonValue>),
        /// An object, as ordered key/value pairs.
        Object(Vec<(String, JsonValue)>),
    }

    impl JsonValue {
        /// Whether this value is a number.
        pub fn is_number(&self) -> bool {
            matches!(self, JsonValue::Num(_))
        }

        /// Whether this value is a string.
        pub fn is_string(&self) -> bool {
            matches!(self, JsonValue::Str(_))
        }

        /// The value as a float, if it is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                JsonValue::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The value as a string slice, if it is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                JsonValue::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as an array, if it is one.
        pub fn as_array(&self) -> Option<&Vec<JsonValue>> {
            match self {
                JsonValue::Array(a) => Some(a),
                _ => None,
            }
        }

        /// Looks up an object key, returning [`JsonValue::Null`] when
        /// absent (matching `serde_json`'s indexing behaviour).
        pub fn get(&self, key: &str) -> &JsonValue {
            static NULL: JsonValue = JsonValue::Null;
            match self {
                JsonValue::Object(entries) => entries
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .unwrap_or(&NULL),
                _ => &NULL,
            }
        }
    }

    impl std::ops::Index<&str> for JsonValue {
        type Output = JsonValue;

        fn index(&self, key: &str) -> &JsonValue {
            self.get(key)
        }
    }

    impl PartialEq<str> for JsonValue {
        fn eq(&self, other: &str) -> bool {
            self.as_str() == Some(other)
        }
    }

    impl PartialEq<&str> for JsonValue {
        fn eq(&self, other: &&str) -> bool {
            self.as_str() == Some(*other)
        }
    }
}

use json::JsonValue;

/// Conversion into an in-memory JSON tree.
///
/// Derivable for structs with named fields via
/// `#[derive(serde::Serialize)]`; `#[serde(flatten)]` splices a
/// field's object entries into the parent object.
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn to_json_value(&self) -> JsonValue;
}

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> JsonValue {
                JsonValue::Num(*self as f64)
            }
        }
    )*};
}
serialize_float!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> JsonValue {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json_value(),
            None => JsonValue::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<A: Serialize> Serialize for (A,) {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(vec![self.0.to_json_value()])
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::json::JsonValue;
    use super::Serialize;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(1.5f64.to_json_value(), JsonValue::Num(1.5));
        assert_eq!(3u64.to_json_value(), JsonValue::Num(3.0));
        assert_eq!('J'.to_json_value(), JsonValue::Str("J".into()));
        assert_eq!(true.to_json_value(), JsonValue::Bool(true));
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1.0f64, 2.0f64)];
        let j = v.to_json_value();
        assert_eq!(
            j,
            JsonValue::Array(vec![JsonValue::Array(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(2.0)
            ])])
        );
    }

    #[test]
    fn index_missing_key_is_null() {
        let obj = JsonValue::Object(vec![("a".into(), JsonValue::Num(1.0))]);
        assert_eq!(obj["a"], JsonValue::Num(1.0));
        assert_eq!(obj["b"], JsonValue::Null);
    }
}
