//! A minimal, dependency-free stand-in for the `serde` crate.
//!
//! This workspace vendors its third-party dependencies so it builds
//! offline. Instead of serde's visitor architecture, the shim's
//! [`Serialize`] trait converts a value directly into an in-memory
//! JSON tree ([`json::JsonValue`]), which the vendored `serde_json`
//! shim pretty-prints and parses. `#[derive(Serialize)]` (from the
//! vendored `serde_derive`) supports structs with named fields and the
//! `#[serde(flatten)]` field attribute — the subset this workspace's
//! report types use.

#![forbid(unsafe_code)]

pub use serde_derive::Serialize;

/// The in-memory JSON tree produced by [`Serialize`].
pub mod json {
    /// A JSON value. Object entries preserve insertion order so that
    /// serialized reports keep their field order.
    #[derive(Debug, Clone, PartialEq)]
    pub enum JsonValue {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number (integers are representable exactly up to
        /// 2^53, far beyond the frame counters serialized here).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Array(Vec<JsonValue>),
        /// An object, as ordered key/value pairs.
        Object(Vec<(String, JsonValue)>),
    }

    impl JsonValue {
        /// Whether this value is a number.
        pub fn is_number(&self) -> bool {
            matches!(self, JsonValue::Num(_))
        }

        /// Whether this value is a string.
        pub fn is_string(&self) -> bool {
            matches!(self, JsonValue::Str(_))
        }

        /// The value as a float, if it is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                JsonValue::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The value as a string slice, if it is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                JsonValue::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as an array, if it is one.
        pub fn as_array(&self) -> Option<&Vec<JsonValue>> {
            match self {
                JsonValue::Array(a) => Some(a),
                _ => None,
            }
        }

        /// Looks up an object key, returning [`JsonValue::Null`] when
        /// absent (matching `serde_json`'s indexing behaviour).
        pub fn get(&self, key: &str) -> &JsonValue {
            static NULL: JsonValue = JsonValue::Null;
            match self {
                JsonValue::Object(entries) => entries
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .unwrap_or(&NULL),
                _ => &NULL,
            }
        }
    }

    impl std::ops::Index<&str> for JsonValue {
        type Output = JsonValue;

        fn index(&self, key: &str) -> &JsonValue {
            self.get(key)
        }
    }

    impl PartialEq<str> for JsonValue {
        fn eq(&self, other: &str) -> bool {
            self.as_str() == Some(other)
        }
    }

    impl PartialEq<&str> for JsonValue {
        fn eq(&self, other: &&str) -> bool {
            self.as_str() == Some(*other)
        }
    }
}

/// Deserialization out of an in-memory JSON tree.
///
/// The mirror image of [`Serialize`]: a [`de::Deserialize`] value is
/// decoded from a [`json::JsonValue`] through a path-tracking
/// [`de::Cursor`], so every error names the exact JSON location
/// (`$.groups[2].session.users`) alongside what was expected. The
/// XRBench workload/fleet/core spec loaders implement the trait by
/// hand for their wire types — the shapes are few enough that a derive
/// macro would cost more than it saves.
pub mod de {
    use super::json::JsonValue;
    use std::fmt;

    /// A deserialization failure: where in the document, and why.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct DeError {
        /// JSON-path-style location, e.g. `$.models[1].target_fps`.
        pub path: String,
        /// What went wrong at that location.
        pub message: String,
    }

    impl fmt::Display for DeError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}: {}", self.path, self.message)
        }
    }

    impl std::error::Error for DeError {}

    /// What a [`JsonValue`] variant is called in error messages.
    fn type_name(v: &JsonValue) -> &'static str {
        match v {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "a boolean",
            JsonValue::Num(_) => "a number",
            JsonValue::Str(_) => "a string",
            JsonValue::Array(_) => "an array",
            JsonValue::Object(_) => "an object",
        }
    }

    /// A read-only view into a [`JsonValue`] that remembers its path
    /// from the document root, so errors pinpoint their location.
    #[derive(Debug, Clone)]
    pub struct Cursor<'a> {
        value: &'a JsonValue,
        path: String,
    }

    impl<'a> Cursor<'a> {
        /// A cursor at the document root (path `$`).
        pub fn root(value: &'a JsonValue) -> Self {
            Self {
                value,
                path: "$".to_string(),
            }
        }

        /// The raw value under the cursor.
        pub fn value(&self) -> &'a JsonValue {
            self.value
        }

        /// The cursor's JSON path from the root.
        pub fn path(&self) -> &str {
            &self.path
        }

        /// An error at this cursor's location.
        pub fn error(&self, message: impl Into<String>) -> DeError {
            DeError {
                path: self.path.clone(),
                message: message.into(),
            }
        }

        /// Descends into a required object field.
        ///
        /// # Errors
        ///
        /// Fails if the value is not an object or the field is absent.
        pub fn field(&self, name: &str) -> Result<Cursor<'a>, DeError> {
            match self.opt_field(name)? {
                Some(c) => Ok(c),
                None => Err(self.error(format!("missing required field `{name}`"))),
            }
        }

        /// Descends into an optional object field; absent fields and
        /// explicit `null`s both read as `None`.
        ///
        /// # Errors
        ///
        /// Fails if the value is not an object.
        pub fn opt_field(&self, name: &str) -> Result<Option<Cursor<'a>>, DeError> {
            let JsonValue::Object(entries) = self.value else {
                return Err(
                    self.error(format!("expected an object, got {}", type_name(self.value)))
                );
            };
            Ok(entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .filter(|v| !matches!(v, JsonValue::Null))
                .map(|v| Cursor {
                    value: v,
                    path: format!("{}.{name}", self.path),
                }))
        }

        /// Rejects object keys outside `allowed` — the strict-schema
        /// check that turns a typo'd field name into an error instead
        /// of a silently ignored setting.
        ///
        /// # Errors
        ///
        /// Fails if the value is not an object or an unknown key is
        /// present (the message lists the allowed keys).
        pub fn deny_unknown_fields(&self, allowed: &[&str]) -> Result<(), DeError> {
            let JsonValue::Object(entries) = self.value else {
                return Err(
                    self.error(format!("expected an object, got {}", type_name(self.value)))
                );
            };
            for (k, _) in entries {
                if !allowed.contains(&k.as_str()) {
                    return Err(self.error(format!(
                        "unknown field `{k}` (expected one of: {})",
                        allowed.join(", ")
                    )));
                }
            }
            Ok(())
        }

        /// The elements of an array value, each with an indexed path.
        ///
        /// # Errors
        ///
        /// Fails if the value is not an array.
        pub fn items(&self) -> Result<Vec<Cursor<'a>>, DeError> {
            let JsonValue::Array(items) = self.value else {
                return Err(self.error(format!("expected an array, got {}", type_name(self.value))));
            };
            Ok(items
                .iter()
                .enumerate()
                .map(|(i, v)| Cursor {
                    value: v,
                    path: format!("{}[{i}]", self.path),
                })
                .collect())
        }

        /// Decodes the value under the cursor as `T`.
        pub fn get<T: Deserialize>(&self) -> Result<T, DeError> {
            T::deserialize(self)
        }

        /// Decodes a required field as `T` in one step.
        pub fn get_field<T: Deserialize>(&self, name: &str) -> Result<T, DeError> {
            self.field(name)?.get()
        }

        /// Decodes an optional field as `T`, `None` when absent/null.
        pub fn get_opt_field<T: Deserialize>(&self, name: &str) -> Result<Option<T>, DeError> {
            self.opt_field(name)?.map(|c| c.get()).transpose()
        }

        /// The value as a string slice.
        ///
        /// # Errors
        ///
        /// Fails if the value is not a string.
        pub fn as_str(&self) -> Result<&'a str, DeError> {
            match self.value {
                JsonValue::Str(s) => Ok(s),
                other => Err(self.error(format!("expected a string, got {}", type_name(other)))),
            }
        }

        /// The value as a float.
        ///
        /// # Errors
        ///
        /// Fails if the value is not a number.
        pub fn as_f64(&self) -> Result<f64, DeError> {
            match self.value {
                JsonValue::Num(n) => Ok(*n),
                other => Err(self.error(format!("expected a number, got {}", type_name(other)))),
            }
        }

        /// The value as a non-negative integer.
        ///
        /// # Errors
        ///
        /// Fails if the value is not a whole non-negative number
        /// representable in a `u64`. The upper bound is exclusive of
        /// 2^64: `u64::MAX as f64` rounds up to exactly 2^64, so an
        /// inclusive range would silently saturate that input.
        pub fn as_u64(&self) -> Result<u64, DeError> {
            let n = self.as_f64()?;
            if n.fract() == 0.0 && n >= 0.0 && n < u64::MAX as f64 {
                Ok(n as u64)
            } else {
                Err(self.error(format!("expected a non-negative integer, got {n}")))
            }
        }
    }

    /// Conversion out of an in-memory JSON tree.
    pub trait Deserialize: Sized {
        /// Decodes `Self` from the value under `cursor`.
        ///
        /// # Errors
        ///
        /// Returns a [`DeError`] naming the JSON path of the first
        /// mismatch.
        fn deserialize(cursor: &Cursor<'_>) -> Result<Self, DeError>;
    }

    impl Deserialize for f64 {
        fn deserialize(cursor: &Cursor<'_>) -> Result<Self, DeError> {
            cursor.as_f64()
        }
    }

    impl Deserialize for u64 {
        fn deserialize(cursor: &Cursor<'_>) -> Result<Self, DeError> {
            cursor.as_u64()
        }
    }

    impl Deserialize for u32 {
        fn deserialize(cursor: &Cursor<'_>) -> Result<Self, DeError> {
            let n = cursor.as_u64()?;
            u32::try_from(n).map_err(|_| cursor.error(format!("{n} does not fit in a u32")))
        }
    }

    impl Deserialize for usize {
        fn deserialize(cursor: &Cursor<'_>) -> Result<Self, DeError> {
            let n = cursor.as_u64()?;
            usize::try_from(n).map_err(|_| cursor.error(format!("{n} does not fit in a usize")))
        }
    }

    impl Deserialize for bool {
        fn deserialize(cursor: &Cursor<'_>) -> Result<Self, DeError> {
            match cursor.value() {
                JsonValue::Bool(b) => Ok(*b),
                other => Err(cursor.error(format!("expected a boolean, got {}", type_name(other)))),
            }
        }
    }

    impl Deserialize for String {
        fn deserialize(cursor: &Cursor<'_>) -> Result<Self, DeError> {
            cursor.as_str().map(str::to_string)
        }
    }

    impl<T: Deserialize> Deserialize for Vec<T> {
        fn deserialize(cursor: &Cursor<'_>) -> Result<Self, DeError> {
            cursor.items()?.iter().map(Cursor::get).collect()
        }
    }

    impl<T: Deserialize> Deserialize for Option<T> {
        fn deserialize(cursor: &Cursor<'_>) -> Result<Self, DeError> {
            match cursor.value() {
                JsonValue::Null => Ok(None),
                _ => cursor.get().map(Some),
            }
        }
    }
}

use json::JsonValue;

/// Conversion into an in-memory JSON tree.
///
/// Derivable for structs with named fields via
/// `#[derive(serde::Serialize)]`; `#[serde(flatten)]` splices a
/// field's object entries into the parent object.
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn to_json_value(&self) -> JsonValue;
}

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> JsonValue {
                JsonValue::Num(*self as f64)
            }
        }
    )*};
}
serialize_float!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl Serialize for JsonValue {
    fn to_json_value(&self) -> JsonValue {
        self.clone()
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> JsonValue {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json_value(),
            None => JsonValue::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<A: Serialize> Serialize for (A,) {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(vec![self.0.to_json_value()])
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::json::JsonValue;
    use super::Serialize;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(1.5f64.to_json_value(), JsonValue::Num(1.5));
        assert_eq!(3u64.to_json_value(), JsonValue::Num(3.0));
        assert_eq!('J'.to_json_value(), JsonValue::Str("J".into()));
        assert_eq!(true.to_json_value(), JsonValue::Bool(true));
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1.0f64, 2.0f64)];
        let j = v.to_json_value();
        assert_eq!(
            j,
            JsonValue::Array(vec![JsonValue::Array(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(2.0)
            ])])
        );
    }

    #[test]
    fn index_missing_key_is_null() {
        let obj = JsonValue::Object(vec![("a".into(), JsonValue::Num(1.0))]);
        assert_eq!(obj["a"], JsonValue::Num(1.0));
        assert_eq!(obj["b"], JsonValue::Null);
    }

    mod de {
        use crate::de::{Cursor, Deserialize};
        use crate::json::JsonValue;

        fn doc() -> JsonValue {
            JsonValue::Object(vec![
                ("name".into(), JsonValue::Str("vr".into())),
                ("rate".into(), JsonValue::Num(45.0)),
                (
                    "models".into(),
                    JsonValue::Array(vec![
                        JsonValue::Object(vec![("fps".into(), JsonValue::Num(60.0))]),
                        JsonValue::Object(vec![("fps".into(), JsonValue::Str("x".into()))]),
                    ]),
                ),
                ("absent".into(), JsonValue::Null),
            ])
        }

        #[test]
        fn primitives_and_fields_decode() {
            let v = doc();
            let c = Cursor::root(&v);
            assert_eq!(c.get_field::<String>("name").unwrap(), "vr");
            assert_eq!(c.get_field::<f64>("rate").unwrap(), 45.0);
            assert_eq!(c.get_field::<u32>("rate").unwrap(), 45);
            assert_eq!(c.get_opt_field::<f64>("absent").unwrap(), None);
            assert_eq!(c.get_opt_field::<f64>("missing").unwrap(), None);
        }

        #[test]
        fn errors_carry_json_paths() {
            let v = doc();
            let c = Cursor::root(&v);
            let items = c.field("models").unwrap().items().unwrap();
            let err = items[1].get_field::<f64>("fps").unwrap_err();
            assert_eq!(err.path, "$.models[1].fps");
            assert!(err.message.contains("expected a number"), "{err}");
            let err = c.field("nope").unwrap_err();
            assert!(err.message.contains("`nope`"), "{err}");
            assert_eq!(err.path, "$");
        }

        #[test]
        fn integer_decoding_rejects_fractions_and_negatives() {
            let v = JsonValue::Num(1.5);
            assert!(Cursor::root(&v).get::<u64>().is_err());
            let v = JsonValue::Num(-2.0);
            assert!(Cursor::root(&v).get::<u64>().is_err());
            let v = JsonValue::Num(7.0);
            assert_eq!(Cursor::root(&v).get::<u64>().unwrap(), 7);
        }

        #[test]
        fn integer_decoding_rejects_two_to_the_64() {
            // u64::MAX as f64 rounds up to exactly 2^64; it must not
            // silently saturate to u64::MAX.
            let v = JsonValue::Num(u64::MAX as f64);
            assert!(Cursor::root(&v).get::<u64>().is_err());
            // The largest representable-in-f64 u64 below 2^64 decodes.
            let v = JsonValue::Num(9_007_199_254_740_992.0); // 2^53
            assert_eq!(Cursor::root(&v).get::<u64>().unwrap(), 1 << 53);
        }

        #[test]
        fn vec_and_option_decode() {
            let v = JsonValue::Array(vec![JsonValue::Num(1.0), JsonValue::Num(2.0)]);
            assert_eq!(
                Vec::<f64>::deserialize(&Cursor::root(&v)).unwrap(),
                [1.0, 2.0]
            );
            let n = JsonValue::Null;
            assert_eq!(Option::<f64>::deserialize(&Cursor::root(&n)).unwrap(), None);
        }

        #[test]
        fn unknown_fields_are_rejected_when_asked() {
            let v = doc();
            let c = Cursor::root(&v);
            assert!(c
                .deny_unknown_fields(&["name", "rate", "models", "absent"])
                .is_ok());
            let err = c.deny_unknown_fields(&["name", "rate"]).unwrap_err();
            assert!(err.message.contains("unknown field `models`"), "{err}");
        }
    }
}
