//! A minimal, dependency-free stand-in for the `serde_json` crate.
//!
//! Provides pretty-printing of any [`serde::Serialize`] value and a
//! strict JSON parser into [`Value`] — the subset the XRBench report
//! types and tests use. Output follows `serde_json`'s pretty format:
//! two-space indentation and `"key": value` separators.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::json::JsonValue as Value;

/// Error produced by JSON parsing (serialization cannot fail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

/// Serializes a value as pretty-printed JSON.
///
/// # Errors
///
/// Never fails for the tree-shaped values this shim produces; the
/// `Result` mirrors the upstream signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), 0);
    Ok(out)
}

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the upstream signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let pretty = to_string_pretty(value)?;
    // Re-parse and emit compactly: simplest correct round-trip given
    // the shim only targets human-scale reports.
    let v = from_str(&pretty)?;
    let mut out = String::new();
    write_compact(&mut out, &v);
    Ok(out)
}

fn write_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_value(out: &mut String, v: &Value, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                write_indent(out, depth + 1);
                write_value(out, item, depth + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            write_indent(out, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                write_indent(out, depth + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value(out, val, depth + 1);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            write_indent(out, depth);
            out.push('}');
        }
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    use fmt::Write as _;
    if !n.is_finite() {
        // JSON has no NaN/inf; emit null like serde_json's lossy modes.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        // Match serde_json: whole floats keep a trailing `.0`, while
        // true integers print bare. The shim stores both as f64, so
        // bare integers are recovered by printing exact whole values
        // without an exponent.
        let _ = write!(out, "{n:.1}");
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax problem.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        Error {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{kw}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.error("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex_start = self.pos + 1;
                            let hex_end = hex_start + 4;
                            if hex_end > self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[hex_start..hex_end])
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are out of scope for the
                            // shim (reports are plain ASCII); map
                            // unpaired surrogates to the replacement
                            // character rather than failing.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_format_matches_serde_json_style() {
        let v = Value::Object(vec![
            ("overall_score".to_string(), Value::Num(0.68)),
            ("scenario".to_string(), Value::Str("VR Gaming".to_string())),
            ("models".to_string(), Value::Array(vec![])),
        ]);
        let s = to_string_pretty(&Wrapper(v)).unwrap();
        assert!(s.contains("\"overall_score\": 0.68"), "{s}");
        assert!(s.contains("\"scenario\": \"VR Gaming\""), "{s}");
        assert!(s.contains("\"models\": []"), "{s}");
    }

    /// Serialize adapter so tests can feed a raw Value.
    struct Wrapper(Value);
    impl serde::Serialize for Wrapper {
        fn to_json_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn whole_floats_keep_decimal_point() {
        let mut out = String::new();
        write_number(&mut out, 12.0);
        assert_eq!(out, "12.0");
        out.clear();
        write_number(&mut out, 0.9);
        assert_eq!(out, "0.9");
    }

    #[test]
    fn round_trips_nested_documents() {
        let v = Value::Object(vec![
            (
                "a".to_string(),
                Value::Array(vec![
                    Value::Num(1.0),
                    Value::Num(2.5),
                    Value::Str("x\"y".to_string()),
                ]),
            ),
            ("b".to_string(), Value::Bool(true)),
            ("c".to_string(), Value::Null),
        ]);
        let s = to_string_pretty(&Wrapper(v.clone())).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("").is_err());
    }

    #[test]
    fn indexing_and_accessors() {
        let v = from_str(r#"{"x": 1.5, "y": "s", "z": [1, 2, 3]}"#).unwrap();
        assert!(v["x"].is_number());
        assert_eq!(v["y"], "s");
        assert_eq!(v["z"].as_array().unwrap().len(), 3);
        assert_eq!(v["missing"], Value::Null);
    }
}
