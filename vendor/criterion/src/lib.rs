//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! Implements the configuration/grouping/`iter` API surface that this
//! workspace's benches use, backed by a simple warm-up + sampled-mean
//! timer. Statistics are intentionally basic (mean / min / max over
//! samples); the point is that `cargo bench` builds and runs offline
//! and reports stable relative numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver and configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, &id.into(), &mut f);
        self
    }

    /// Runs a single benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(self, &id.to_string(), &mut |b| f(b, input));
        self
    }
}

/// A named group of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(self.criterion, &label, &mut f);
        self
    }

    /// Runs a benchmark within the group, passing an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, &label, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// The timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`, preventing the result from
    /// being optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(config: &Criterion, label: &str, f: &mut F) {
    // Warm up: run single iterations until the warm-up budget is
    // spent, and estimate the per-iteration cost as we go.
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    loop {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed > Duration::ZERO {
            per_iter = b.elapsed;
        }
        if warm_start.elapsed() >= config.warm_up_time {
            break;
        }
    }

    // Pick an iteration count per sample so that all samples fit in
    // roughly the measurement-time budget.
    let budget_per_sample = config.measurement_time / config.sample_size as u32;
    let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, u128::from(u32::MAX)) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0_f64, f64::max);
    println!(
        "{label:<50} time: [{} {} {}]  ({} samples x {iters} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        samples.len(),
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Re-export for benches that import `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("conv", "WS").to_string(), "conv/WS");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
