//! `#[derive(Serialize)]` for the vendored `serde` shim.
//!
//! Supports exactly the shapes this workspace serializes: non-generic
//! structs with named fields, plus the `#[serde(flatten)]` field
//! attribute (which splices a field's object entries into the parent
//! object). Anything else — enums, tuple structs, generics — is
//! rejected with a compile error naming the limitation, so a future
//! consumer fails loudly instead of silently mis-serializing.
//!
//! The macro parses the token stream by hand (no `syn`/`quote`): the
//! grammar of a named-field struct is small enough that a direct
//! token-tree walk is clearer than vendoring a full parser.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    flatten: bool,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_struct(input) {
        Ok((name, fields)) => generate_impl(&name, &fields),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Parses `struct Name { fields }`, skipping attributes and
/// visibility, and rejecting unsupported shapes.
fn parse_struct(input: TokenStream) -> Result<(String, Vec<Field>), String> {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes and visibility until the `struct` keyword.
    let mut name = None;
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            match id.to_string().as_str() {
                "struct" => {
                    match tokens.next() {
                        Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                        _ => return Err("expected struct name".to_string()),
                    }
                    break;
                }
                "enum" | "union" => {
                    return Err("serde shim: #[derive(Serialize)] only supports structs".to_string())
                }
                _ => {}
            }
        }
    }
    let name = name.ok_or_else(|| "expected `struct`".to_string())?;

    // The next token must open the named-field body; generics or a
    // tuple/unit struct are out of scope for the shim.
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err("serde shim: generic structs are not supported".to_string())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err("serde shim: tuple structs are not supported".to_string())
            }
            Some(_) => continue,
            None => return Err("serde shim: unit structs are not supported".to_string()),
        }
    };

    let mut fields = Vec::new();
    let mut body_tokens = body.stream().into_iter().peekable();
    'fields: loop {
        // Field attributes: `#[...]`, watching for `serde(flatten)`.
        let mut flatten = false;
        loop {
            match body_tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    body_tokens.next();
                    match body_tokens.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                            if attr_is_serde_flatten(&g.stream()) {
                                flatten = true;
                            }
                        }
                        _ => return Err("malformed attribute".to_string()),
                    }
                }
                Some(_) => break,
                None => break 'fields,
            }
        }

        // Visibility: `pub` or `pub(...)`.
        if let Some(TokenTree::Ident(id)) = body_tokens.peek() {
            if id.to_string() == "pub" {
                body_tokens.next();
                if let Some(TokenTree::Group(g)) = body_tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        body_tokens.next();
                    }
                }
            }
        }

        // Field name and `:`.
        let field_name = match body_tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
            None => break,
        };
        match body_tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{field_name}`")),
        }

        // Skip the type: consume until a top-level `,` (commas inside
        // `<...>` angle brackets belong to the type).
        let mut angle_depth = 0i32;
        loop {
            match body_tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
                None => {
                    fields.push(Field {
                        name: field_name,
                        flatten,
                    });
                    break 'fields;
                }
            }
        }
        fields.push(Field {
            name: field_name,
            flatten,
        });
    }

    Ok((name, fields))
}

/// Whether a `#[...]` attribute body is `serde(...)` containing a
/// `flatten` ident.
fn attr_is_serde_flatten(stream: &TokenStream) -> bool {
    let mut iter = stream.clone().into_iter();
    match (iter.next(), iter.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) if id.to_string() == "serde" => g
            .stream()
            .into_iter()
            .any(|tt| matches!(&tt, TokenTree::Ident(id) if id.to_string() == "flatten")),
        _ => false,
    }
}

fn generate_impl(name: &str, fields: &[Field]) -> TokenStream {
    let mut pushes = String::new();
    for f in fields {
        if f.flatten {
            pushes.push_str(&format!(
                "match serde::Serialize::to_json_value(&self.{field}) {{\n\
                     serde::json::JsonValue::Object(entries) => obj.extend(entries),\n\
                     other => obj.push(({field_name:?}.to_string(), other)),\n\
                 }}\n",
                field = f.name,
                field_name = f.name,
            ));
        } else {
            pushes.push_str(&format!(
                "obj.push(({field_name:?}.to_string(), \
                 serde::Serialize::to_json_value(&self.{field})));\n",
                field = f.name,
                field_name = f.name,
            ));
        }
    }
    let code = format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> serde::json::JsonValue {{\n\
                 let mut obj: Vec<(String, serde::json::JsonValue)> = Vec::new();\n\
                 {pushes}\
                 serde::json::JsonValue::Object(obj)\n\
             }}\n\
         }}\n"
    );
    code.parse().expect("generated impl parses")
}
