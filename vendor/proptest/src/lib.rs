//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! Provides the `proptest!` test macro, value strategies for numeric
//! ranges / tuples / collections / sampling, and the `prop_assert*`
//! macros — the subset this workspace's property tests use.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed derived from the test name (no persisted
//! failure files), and failing cases are reported by the panic from
//! `prop_assert!` without shrinking. That keeps runs reproducible and
//! the implementation small; the tests in this workspace assert
//! invariants, not minimal counterexamples.
//!
//! A second deliberate difference: the `PROPTEST_CASES` environment
//! variable overrides the case count even when a test sets an
//! explicit `ProptestConfig::with_cases` (upstream only overrides the
//! default). This workspace's property suites pin small per-test
//! counts for fast PR feedback and rely on the nightly CI job
//! exporting `PROPTEST_CASES=2048` to run the same suites deep —
//! env-wins is what makes that single knob sufficient.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Test-runner plumbing: the deterministic case generator.
pub mod test_runner {
    /// Deterministic splitmix64 generator seeded per (test, case).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the generator for one test case.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;

    /// Generates values of an output type from a random stream.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A, B, C, D> Strategy for (A, B, C, D)
    where
        A: Strategy,
        B: Strategy,
        C: Strategy,
        D: Strategy,
    {
        type Value = (A::Value, B::Value, C::Value, D::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }
}

use strategy::Strategy;

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range strategy");
        // next_unit_f64 is in [0, 1); stretch slightly past hi and
        // clamp so the inclusive endpoint stays reachable.
        (lo + rng.next_unit_f64() * (hi - lo) * (1.0 + 1e-12)).min(hi)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// An arbitrary-value strategy for `T` (mirrors `proptest::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy selecting uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Selects uniformly from `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "cannot select from an empty list");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.items.len() as u64) as usize;
            self.items[idx].clone()
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy producing vectors of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Produces vectors with lengths drawn from `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is empty.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

/// Parses a `PROPTEST_CASES`-style value (positive integer).
fn parse_cases(raw: Option<String>) -> Option<u32> {
    raw.and_then(|v| v.trim().parse().ok()).filter(|&n| n > 0)
}

/// The environment override, if set (see the module docs: it wins
/// over explicit `with_cases` so one CI knob deepens every suite).
fn env_cases() -> Option<u32> {
    parse_cases(std::env::var("PROPTEST_CASES").ok())
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test (overridden by
    /// the `PROPTEST_CASES` environment variable when set).
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self::with_cases(256)
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, ProptestConfig};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Defines property tests: each `fn name(bindings in strategies)`
/// becomes a `#[test]` that draws `cases` deterministic inputs and
/// runs the body for each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { @cfg($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (@cfg($config:expr)) => {};
    (@cfg($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __proptest_config: $crate::ProptestConfig = $config;
            for __proptest_case in 0..__proptest_config.cases {
                let mut __proptest_rng = $crate::test_runner::TestRng::for_case(
                    stringify!($name),
                    __proptest_case,
                );
                $(let $pat = $crate::strategy::Strategy::generate(
                    &($strat),
                    &mut __proptest_rng,
                );)+
                $body
            }
        }
        $crate::__proptest_each! { @cfg($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 0.5_f64..2.0,
            n in 1usize..5,
            b in any::<bool>(),
        ) {
            prop_assert!((0.5..2.0).contains(&x));
            prop_assert!((1..5).contains(&n));
            prop_assert!(usize::from(b) <= 1);
        }

        #[test]
        fn collections_respect_size(
            v in prop::collection::vec((0.0_f64..=1.0, 0.0_f64..=1.0), 1..10),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            for (a, b) in v {
                prop_assert!((0.0..=1.0).contains(&a));
                prop_assert!((0.0..=1.0).contains(&b));
            }
        }

        #[test]
        fn select_draws_members(
            x in prop::sample::select(vec![1u32, 2, 3]),
        ) {
            prop_assert!([1, 2, 3].contains(&x));
        }
    }

    #[test]
    fn case_count_parsing() {
        // The env override parser (exercised without touching the
        // process environment, which other tests share).
        assert_eq!(crate::parse_cases(Some("2048".into())), Some(2048));
        assert_eq!(crate::parse_cases(Some(" 64 ".into())), Some(64));
        assert_eq!(crate::parse_cases(Some("0".into())), None);
        assert_eq!(crate::parse_cases(Some("nope".into())), None);
        assert_eq!(crate::parse_cases(None), None);
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_case("t", 0);
        let mut b = crate::test_runner::TestRng::for_case("t", 0);
        let s = 0.0_f64..1.0;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
