//! A minimal, dependency-free stand-in for the `rand` crate.
//!
//! This workspace vendors its third-party dependencies so it builds
//! offline. Only the API surface the XRBench crates actually use is
//! provided: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over numeric ranges.
//!
//! The generator is splitmix64 (Steele et al., "Fast Splittable
//! Pseudorandom Number Generators"), which has full-period 64-bit
//! state and strong avalanche behaviour for sequential seeds — the
//! property the deterministic per-(model, frame) trigger draws in the
//! simulator rely on. The stream is **not** identical to upstream
//! `rand`'s ChaCha-based `StdRng`, but every consumer in this
//! workspace only relies on determinism and uniformity, not on a
//! specific stream.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to draw a uniform sample from itself.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high bits -> uniform double in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (splitmix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn sequential_seeds_decorrelated() {
        // First draw across sequential seeds should look uniform:
        // the simulator's per-frame trigger draws depend on this.
        let n = 2000;
        let hits = (0..n)
            .filter(|&s| StdRng::seed_from_u64(s).gen_range(0.0..1.0) < 0.2)
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn int_range_uniformish() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..5000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for c in counts {
            assert!(c > 800, "{counts:?}");
        }
    }
}
