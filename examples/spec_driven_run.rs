//! Spec-driven runs: the library face of the `xrbench` CLI.
//!
//! Loads the committed default suite document (accelerator J at 8192
//! PEs, 10 repeats — the quickstart configuration), executes it, and
//! shows that a run document defined in JSON produces exactly the
//! report the programmatic path does.
//!
//! ```sh
//! cargo run --release --example spec_driven_run
//! ```

use xrbench::prelude::*;

fn main() {
    // 1. A run document is one JSON file naming the system, the
    //    workload, and the run parameters. This is the committed
    //    specs/suite_default.json.
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/specs/suite_default.json"
    ))
    .expect("committed spec exists");
    let doc = RunDocument::from_json_str(&text).expect("committed spec is valid");
    let RunDocument::Suite(suite) = &doc else {
        panic!("suite_default.json is a suite document");
    };
    println!(
        "loaded suite document: {} scenarios, {} repeats",
        suite.catalog.len(),
        suite.repeats
    );

    // 2. `Runner::run` executes any document kind and returns a
    //    tagged report — the report is bit-identical to the
    //    programmatic path.
    let report = Runner::new().run(&doc).expect("suite runs are infallible");
    let RunReport::Suite(from_spec) = report else {
        panic!("a suite document yields a suite report");
    };
    let system = AcceleratorSystem::new(config_by_id('J').expect("Table 5 defines J"), 8192);
    let programmatic = run_suite(&Harness::new(), &system, 10);
    assert_eq!(from_spec.to_json(), programmatic.to_json());
    println!("spec path == library path, byte for byte");
    println!("XRBench Score: {:.3}", from_spec.xrbench_score);

    // 3. Custom scenarios come from text too: a scenario document is
    //    validated by the same ScenarioBuilder that code uses, so bad
    //    files fail with the builder's diagnostics.
    let copilot = scenario_from_str(
        r#"{
            "name": "AR Co-pilot",
            "description": "Hands + gated voice pipeline",
            "models": [
                { "model": "HT", "target_fps": 30.0 },
                { "model": "KD", "target_fps": 3.0 },
                { "model": "SR", "target_fps": 3.0,
                  "deps": [ { "upstream": "KD", "kind": "control",
                              "trigger_probability": 0.8 } ] }
            ]
        }"#,
    )
    .expect("valid scenario document");
    let report = Harness::new().run_spec(&copilot, &system, &mut LatencyGreedy::new());
    println!("AR Co-pilot overall: {:.3}", report.0.overall());

    // 4. And invalid files surface the builder's exact diagnostic:
    let err = scenario_from_str(
        r#"{ "name": "bad", "models": [ { "model": "KD", "target_fps": 10.0 } ] }"#,
    )
    .unwrap_err();
    println!("rejected as expected: {err}");
}
