//! Design-space exploration: sweep all thirteen Table 5 accelerator
//! configurations at both PE counts across the whole suite and rank
//! them by XRBench Score — the study the paper's §4.4 observations
//! come from, usable as a template for custom hardware sweeps.
//!
//! ```sh
//! cargo run --release --example design_space_exploration
//! ```

use xrbench::prelude::*;

fn main() {
    let harness = Harness::new();
    let repeats = 10;

    let mut ranking: Vec<(String, f64, f64)> = Vec::new();
    for pes in [4096u64, 8192] {
        for config in table5() {
            let system = AcceleratorSystem::new(config.clone(), pes);
            let bench = run_suite(&harness, &system, repeats);
            // Pareto axes: score vs energy (mean per-scenario mJ).
            let energy_mj: f64 = bench
                .scenarios
                .iter()
                .map(|s| s.total_energy_mj)
                .sum::<f64>()
                / bench.scenarios.len() as f64;
            ranking.push((system.label(), bench.xrbench_score, energy_mj));
        }
    }
    ranking.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!(
        "{:<46} {:>14} {:>16}",
        "system", "XRBench Score", "energy (mJ/s)"
    );
    for (label, score, energy) in &ranking {
        println!("{label:<46} {score:>14.3} {energy:>16.0}");
    }

    let best = &ranking[0];
    let worst = ranking.last().expect("non-empty");
    println!(
        "\nbest {} outscores worst {} by {:.1}x — scenario-aware co-design matters \
         (paper Observation 1).",
        best.0,
        worst.0,
        best.1 / worst.1.max(1e-9)
    );

    // Per-scenario winners, the granular view behind Observation 1.
    println!("\nper-scenario winners (4K PEs):");
    for scenario in UsageScenario::ALL {
        let mut best: Option<(String, f64)> = None;
        for config in table5() {
            let system = AcceleratorSystem::new(config.clone(), 4096);
            let report = harness.run_scenario(scenario, &system);
            if best.as_ref().is_none_or(|(_, s)| report.overall() > *s) {
                best = Some((format!("{}", config.id), report.overall()));
            }
        }
        let (id, score) = best.expect("13 candidates");
        println!("  {:<22} -> accelerator {id} ({score:.3})", scenario.name());
    }
}
