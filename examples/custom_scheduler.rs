//! Plugging a custom scheduler into the harness — the yellow
//! "user-customizable" boxes of the paper's Figure 2. XRBench ships a
//! latency-greedy and a round-robin scheduler; here we add a
//! *model-affinity* scheduler that pins heavy models to the engine
//! whose dataflow suits them and compare all three.
//!
//! ```sh
//! cargo run --release --example custom_scheduler
//! ```

use xrbench::prelude::*;
use xrbench::sim::PendingView;

/// Pins each model to its best engine (measured once from the cost
/// provider) and only falls back to other engines when the preferred
/// one is busy and the deadline is at risk.
#[derive(Debug, Default)]
struct AffinityScheduler;

impl Scheduler for AffinityScheduler {
    fn select(
        &mut self,
        ready: &[PendingView],
        free_engines: &[usize],
        provider: &dyn CostProvider,
        now: f64,
    ) -> Option<(usize, usize)> {
        if ready.is_empty() || free_engines.is_empty() {
            return None;
        }
        // Earliest deadline first.
        let (ri, req) = ready
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.t_deadline.total_cmp(&b.t_deadline))?;
        // Preferred engine: minimal latency across ALL engines.
        let best = (0..provider.num_engines())
            .min_by(|&a, &b| {
                provider
                    .cost(req.model, a)
                    .latency_s
                    .total_cmp(&provider.cost(req.model, b).latency_s)
            })
            .expect("provider has engines");
        if free_engines.contains(&best) {
            return Some((ri, best));
        }
        // Preferred engine busy: only steal another engine if waiting
        // would likely blow the deadline.
        let slack_left = req.t_deadline - now;
        let fallback = free_engines
            .iter()
            .copied()
            .min_by(|&a, &b| {
                provider
                    .cost(req.model, a)
                    .latency_s
                    .total_cmp(&provider.cost(req.model, b).latency_s)
            })
            .expect("non-empty");
        let fallback_latency = provider.cost(req.model, fallback).latency_s;
        if fallback_latency < slack_left {
            Some((ri, fallback))
        } else {
            // Wait for the preferred engine.
            None
        }
    }

    fn name(&self) -> &'static str {
        "model-affinity"
    }
}

fn main() {
    let config = table5()
        .into_iter()
        .find(|c| c.id == 'J')
        .expect("Table 5 defines J");
    let system = AcceleratorSystem::new(config, 4096);
    let harness = Harness::new();

    println!("scenario: AR Gaming on {}\n", system.label());
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>9} {:>7}",
        "scheduler", "realtime", "qoe", "overall", "drops", "misses"
    );
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(LatencyGreedy::new()),
        Box::new(RoundRobin::new()),
        Box::new(AffinityScheduler),
    ];
    for s in schedulers.iter_mut() {
        let (report, _) = harness.run_spec(&UsageScenario::ArGaming.spec(), &system, s.as_mut());
        let misses: u64 = report.models.iter().map(|m| m.missed_deadlines).sum();
        println!(
            "{:<16} {:>8.3} {:>8.3} {:>8.3} {:>8.1}% {:>7}",
            report.scheduler,
            report.breakdown.realtime_score,
            report.breakdown.qoe_score,
            report.overall(),
            report.drop_rate * 100.0,
            misses
        );
    }
    println!(
        "\nAs the paper notes (§3.5), optimizing the software stack is part of the \
         benchmark: replace the scheduler to model your runtime."
    );
}
