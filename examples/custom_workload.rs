//! Defining a custom usage scenario and a custom evaluated system.
//!
//! XRBench's Table 2 scenarios are data, not code: a scenario is a
//! list of (model, target FPS, dependencies), assembled through the
//! validated `ScenarioBuilder` (which rejects dependency cycles,
//! unknown upstreams, and rates the sensors cannot deliver). This
//! example builds a hypothetical "AR Co-pilot" scenario — simultaneous
//! hand interaction, scene understanding, and voice — and evaluates it on
//! (a) a Table 5 accelerator and (b) a custom measured-latency table
//! (the path real systems take: measure, fill a table, score).
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use xrbench::prelude::*;
use xrbench::sim::TableProvider;
use xrbench::workload::DependencyKind;

fn ar_copilot() -> ScenarioSpec {
    use xrbench::models::ModelId::*;
    ScenarioBuilder::new("AR Co-pilot")
        .describe("Simultaneous hand interaction, scene understanding, and voice")
        .model(HandTracking, 30.0)
        .model(SemanticSegmentation, 10.0)
        .model(KeywordDetection, 3.0)
        // Voice commands are expected often in a co-pilot: 80%
        // keyword-utterance probability.
        .dependent(
            SpeechRecognition,
            3.0,
            KeywordDetection,
            DependencyKind::Control,
            0.8,
        )
        .model(DepthEstimation, 30.0)
        .build()
        .expect("valid scenario")
}

fn main() {
    let spec = ar_copilot();
    let harness = Harness::new();

    // (a) Simulated accelerator from Table 5.
    let config = table5().into_iter().find(|c| c.id == 'M').expect("M");
    let system = AcceleratorSystem::new(config, 8192);
    let (report, _) = harness.run_spec(&spec, &system, &mut LatencyGreedy::new());
    println!("custom scenario on {}:", system.label());
    println!(
        "  overall {:.3} (rt {:.3}, energy {:.3}, qoe {:.3})",
        report.overall(),
        report.breakdown.realtime_score,
        report.breakdown.energy_score,
        report.breakdown.qoe_score
    );

    // (b) A measured-latency table, e.g. numbers profiled on a real
    // phone NPU: one engine, per-model latency/energy.
    let mut measured = TableProvider::new(1);
    measured.set_label(0, "phone-npu");
    let table_ms_mj = [
        (xrbench::models::ModelId::HandTracking, 6.5, 18.0),
        (xrbench::models::ModelId::SemanticSegmentation, 38.0, 120.0),
        (xrbench::models::ModelId::KeywordDetection, 0.4, 0.3),
        (xrbench::models::ModelId::SpeechRecognition, 55.0, 95.0),
        (xrbench::models::ModelId::DepthEstimation, 9.0, 30.0),
    ];
    for (model, ms, mj) in table_ms_mj {
        measured.set(
            model,
            0,
            InferenceCost {
                latency_s: ms / 1e3,
                energy_j: mj / 1e3,
            },
        );
    }
    let (report, _) = harness.run_spec(&spec, &measured, &mut LatencyGreedy::new());
    println!("\ncustom scenario on measured phone-npu table:");
    println!(
        "  overall {:.3} (rt {:.3}, energy {:.3}, qoe {:.3})",
        report.overall(),
        report.breakdown.realtime_score,
        report.breakdown.energy_score,
        report.breakdown.qoe_score
    );
    for m in &report.models {
        println!(
            "  {:>2}: {}/{} frames, {} missed deadlines",
            m.model, m.executed_frames, m.total_frames, m.missed_deadlines
        );
    }
}
