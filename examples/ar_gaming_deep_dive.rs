//! AR-gaming deep dive (the paper's Figure 6 workload): compare the
//! 4K- and 8K-PE versions of one accelerator on the heaviest XRBench
//! scenario, render the execution timelines, and show why raw
//! hardware utilization is a misleading metric.
//!
//! ```sh
//! cargo run --release --example ar_gaming_deep_dive [accel-id]
//! ```

use xrbench::core::render_timeline;
use xrbench::prelude::*;

fn main() {
    let id = std::env::args()
        .nth(1)
        .and_then(|s| s.chars().next())
        .unwrap_or('J');
    let config = table5()
        .into_iter()
        .find(|c| c.id == id.to_ascii_uppercase())
        .unwrap_or_else(|| panic!("no accelerator {id} in Table 5 (use A..M)"));
    println!("accelerator {config}\n");

    let harness = Harness::new();
    let mut summary = Vec::new();
    for pes in [4096u64, 8192] {
        let system = AcceleratorSystem::new(config.clone(), pes);
        let (report, result) = harness.run_spec(
            &UsageScenario::ArGaming.spec(),
            &system,
            &mut LatencyGreedy::new(),
        );
        println!("=== {} ===", system.label());
        println!("{}", render_timeline(&result, 100));
        println!(
            "drops {:.1}% | mean utilization {:.2} | overall {:.3}\n",
            report.drop_rate * 100.0,
            report.mean_utilization,
            report.overall()
        );
        summary.push((pes, report.mean_utilization, report.overall()));
    }

    let (p0, u0, s0) = summary[0];
    let (_p1, u1, s1) = summary[1];
    if u0 > u1 && s0 < s1 {
        println!(
            "note: the {p0}-PE system is *busier* (util {u0:.2} vs {u1:.2}) yet scores \
             *worse* ({s0:.3} vs {s1:.3}) — utilization rewards congestion, the XRBench \
             score does not (paper §4.2.2)."
        );
    } else {
        println!(
            "both sizes handle the load; try a heavier accelerator (e.g. B) or 4K PEs \
             to see the utilization fallacy."
        );
    }
}
