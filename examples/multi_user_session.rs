//! A 32-user mixed-scenario session on shared accelerator hardware.
//!
//! Users join 20 ms apart, drawing scenarios round-robin from the
//! whole built-in catalog, and their merged request stream is
//! simulated *concurrently* — every inference competes for the same
//! engines. The report breaks scores down per user (who got served,
//! who starved) plus the session aggregate, and the same session is
//! re-run under all four shipped schedulers to compare dispatch
//! policies under multi-tenant load.
//!
//! ```sh
//! cargo run --release --example multi_user_session
//! ```

use xrbench::prelude::*;
use xrbench::workload::ScenarioCatalog;

fn main() {
    // Population: 32 users cycling through all 7 built-in scenarios.
    let catalog = ScenarioCatalog::builtin();
    let specs: Vec<ScenarioSpec> = catalog.iter().cloned().collect();
    let session = SessionSpec::mixed("metaverse-pod-32", &specs, 32, 0.020);
    println!(
        "session {:?}: {} users over {:.2} s",
        session.name,
        session.num_users(),
        session.span_s(1.0)
    );

    // Shared hardware: accelerator J (WS + OS HDA) at 8K PEs.
    let config = table5().into_iter().find(|c| c.id == 'J').expect("J");
    let system = AcceleratorSystem::new(config, 8192);
    let harness = Harness::new();

    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(LatencyGreedy::new()),
        Box::new(RoundRobin::new()),
        Box::new(SlackAwareEdf::new()),
        Box::new(LeastLoaded::new()),
    ];
    for scheduler in &mut schedulers {
        let report = harness.run_session(&session, &system, scheduler.as_mut());
        let worst = report.worst_user().expect("non-empty session");
        println!(
            "\n{:>14}: session score {:.3} (rt {:.3}, qoe {:.3}), \
             util {:.1}%, drops {:.1}%, worst user #{} at {:.3} ({})",
            report.scheduler,
            report.session_score,
            report.aggregate.realtime_score,
            report.aggregate.qoe_score,
            report.mean_utilization * 100.0,
            report.drop_rate * 100.0,
            worst.user,
            worst.report.overall(),
            worst.report.scenario,
        );
    }

    // Per-user breakdown under the default scheduler.
    let report = harness.run_session(&session, &system, &mut LatencyGreedy::new());
    println!("\nper-user breakdown (latency-greedy):");
    for u in &report.users {
        println!(
            "  user {:>2} (+{:>5.0} ms) {:22} overall {:.3}  qoe {:.3}  drops {:>3}",
            u.user,
            u.start_offset_s * 1e3,
            u.report.scenario,
            u.report.overall(),
            u.report.breakdown.qoe_score,
            u.report
                .models
                .iter()
                .map(|m| m.dropped_frames)
                .sum::<u64>(),
        );
    }
}
