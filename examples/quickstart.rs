//! Quickstart: evaluate one accelerator on one usage scenario and
//! print the XRBench score breakdown.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use xrbench::prelude::*;

fn main() {
    // 1. Pick an evaluated system: accelerator J (a heterogeneous
    //    WS+OS dataflow accelerator, Table 5) with 8K PEs.
    let config = table5()
        .into_iter()
        .find(|c| c.id == 'J')
        .expect("Table 5 defines accelerator J");
    let system = AcceleratorSystem::new(config, 8192);
    println!("system under test: {}", system.label());

    // 2. Pick a usage scenario (Table 2) and run the harness: the
    //    load generator streams one second of jittered inference
    //    requests, the runtime dispatches them with the default
    //    latency-greedy scheduler, and the scoring module grades the
    //    timeline.
    let report = Harness::new().run_scenario(UsageScenario::ArGaming, &system);

    // 3. Read the results.
    println!("\nscenario: {} ({})", report.scenario, report.scheduler);
    println!("  real-time score : {:.3}", report.breakdown.realtime_score);
    println!("  energy score    : {:.3}", report.breakdown.energy_score);
    println!("  accuracy score  : {:.3}", report.breakdown.accuracy_score);
    println!("  QoE score       : {:.3}", report.breakdown.qoe_score);
    println!("  overall         : {:.3}", report.overall());
    println!("  frame drop rate : {:.1}%", report.drop_rate * 100.0);
    for m in &report.models {
        println!(
            "  {:>2}: {}/{} frames, {} missed deadlines, mean latency {:.1} ms",
            m.model, m.executed_frames, m.total_frames, m.missed_deadlines, m.mean_latency_ms
        );
    }

    // 4. Or run the whole suite (all seven scenarios) for the overall
    //    XRBench Score — the single mandatory reporting metric.
    let bench = run_suite(&Harness::new(), &system, 10);
    println!("\nXRBench Score: {:.3}", bench.xrbench_score);
}
